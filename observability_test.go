package dpgen

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dpgen/internal/mpi/tcp"
	"dpgen/internal/obs"
	"dpgen/internal/problems"
)

// buildDprunBinary compiles cmd/dprun into the test's temp dir.
func buildDprunBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "dprun")
	build := exec.Command("go", "build", "-o", bin, "./cmd/dprun")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/dprun: %v\n%s", err, out)
	}
	return bin
}

// parseMergedTrace loads and re-parses a merged trace file.
func parseMergedTrace(t *testing.T, path string) *Trace {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := ParseTrace(f)
	if err != nil {
		t.Fatalf("parsing merged trace %s: %v", path, err)
	}
	return tr
}

// TestDprunTraceMergeClean is the clean-run end-to-end check of the
// observability plane: a two-OS-process lcs2 job through -launch with
// -trace, -report, -stats-json and -metrics-out must produce one
// clock-aligned merged Perfetto file that satisfies the strict
// invariants, a report whose critical path respects the makespan, a
// two-entry stats array, and an aggregated metrics exposition.
func TestDprunTraceMergeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process-spawning test in -short mode")
	}
	bin := buildDprunBinary(t)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "out.json")
	statsPath := filepath.Join(dir, "stats.json")
	metricsPath := filepath.Join(dir, "metrics.prom")

	cmd := exec.Command(bin, "-problem", "lcs2", "-distributed", "-launch", "2", "-threads", "2",
		"-trace", tracePath, "-report", "-stats-json", statsPath, "-metrics-out", metricsPath, "-check")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("dprun -launch with observability flags: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"OK (bit-identical)", "(merged, 2 ranks,", "run report:", "load imbalance ratio"} {
		if !strings.Contains(text, want) {
			t.Errorf("output lacks %q:\n%s", want, text)
		}
	}

	// Merged trace: one file, aligned metadata, strict invariants, and
	// the per-rank intermediates cleaned up.
	tr := parseMergedTrace(t, tracePath)
	if tr.Meta == nil || !tr.Meta.Aligned || tr.Meta.Ranks != 2 {
		t.Fatalf("merged trace meta = %+v, want aligned 2-rank metadata", tr.Meta)
	}
	if viol := VerifyMergedTrace(tr, true); len(viol) != 0 {
		t.Errorf("merged trace violates strict invariants: %v", viol)
	}
	if len(tr.Flows) == 0 {
		t.Error("merged trace has no cross-rank flows; lcs2 over 2 ranks must exchange edges")
	}
	nodes := map[int32]bool{}
	for _, l := range tr.Lanes {
		nodes[l.Node] = true
	}
	if !nodes[0] || !nodes[1] {
		t.Errorf("merged trace lanes cover nodes %v, want both ranks", nodes)
	}
	for r := 0; r < 2; r++ {
		if _, err := os.Stat(tracePath + ".rank" + string(rune('0'+r))); err == nil {
			t.Errorf("per-rank trace file rank%d survived the merge", r)
		}
	}

	// Run-wide report invariant: cross-rank critical path <= makespan.
	p, err := problems.Get("lcs2")
	if err != nil {
		t.Fatal(err)
	}
	tl, err := Analyze(p.Spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := BuildRunReport(tl, tr, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CritPath == nil {
		t.Fatal("run report lacks the critical path")
	}
	if cp, mk := rep.CritPath.CriticalPath, rep.CritPath.Makespan; cp > mk {
		t.Errorf("critical path %v exceeds makespan %v", cp, mk)
	}
	if len(rep.Ranks) != 2 {
		t.Errorf("report covers %d ranks, want 2", len(rep.Ranks))
	}

	// Stats rollup: one JSON array entry per rank, wire counters set.
	var docs []struct {
		Rank  int `json:"rank"`
		Ranks int `json:"ranks"`
		Nodes []struct {
			WireBytesSent int64
			WireBytesRecv int64
		} `json:"nodes"`
		Net *struct {
			ClockRTTNs int64 `json:"clock_rtt_ns"`
		} `json:"net"`
	}
	b, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &docs); err != nil {
		t.Fatalf("stats rollup is not a JSON array: %v\n%s", err, b)
	}
	if len(docs) != 2 {
		t.Fatalf("stats rollup has %d entries, want 2", len(docs))
	}
	for i, d := range docs {
		if d.Rank != i || d.Ranks != 2 || len(d.Nodes) != 1 {
			t.Errorf("stats entry %d = %+v, want rank %d of 2 with one node", i, d, i)
		}
		if len(d.Nodes) == 1 && d.Nodes[0].WireBytesSent == 0 {
			t.Errorf("stats entry %d has zero wire bytes sent", i)
		}
		if d.Net == nil {
			t.Errorf("stats entry %d lacks the transport net snapshot", i)
		} else if i != 0 && d.Net.ClockRTTNs <= 0 {
			t.Errorf("rank %d reports no clock-probe RTT", i)
		}
	}

	// Metrics aggregate: rank-labelled families from both ranks, HELP
	// lines deduplicated.
	mb, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	mtext := string(mb)
	for _, want := range []string{
		`dp_net_bytes_sent_total{rank="0"}`,
		`dp_net_bytes_sent_total{rank="1"}`,
		`dp_edge_latency_seconds_count{rank="0"}`,
	} {
		if !strings.Contains(mtext, want) {
			t.Errorf("aggregated metrics lack %q:\n%s", want, mtext)
		}
	}
	if n := strings.Count(mtext, "# HELP dp_net_bytes_sent_total"); n != 1 {
		t.Errorf("HELP line for dp_net_bytes_sent_total appears %d times, want 1 (dedup)", n)
	}

	// The -check-trace mode must accept the file it just produced.
	check := exec.Command(bin, "-check-trace", tracePath, "-problem", "lcs2")
	if out, err := check.CombinedOutput(); err != nil {
		t.Errorf("dprun -check-trace rejected a clean merged trace: %v\n%s", err, out)
	}
}

// TestDprunTraceMergeRecovery runs the observability plane through a
// crash-and-rejoin job: the merged trace must still verify under the
// lenient recovery rules and must contain the transport's recovery
// instants (peer-down, rejoin, replay) on the dedicated lane.
func TestDprunTraceMergeRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process-spawning test in -short mode")
	}
	bin := buildDprunBinary(t)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "rec.json")

	cmd := exec.Command(bin, "-problem", "lcs2", "-distributed", "-launch", "2", "-threads", "2",
		"-ckpt-dir", t.TempDir(), "-ckpt-every", "8", "-kill-rank", "1", "-crash-after-tiles", "20",
		"-trace", tracePath, "-check")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("supervised recovery run with -trace: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"OK (bit-identical)", "recovered after", "(merged, 2 ranks,"} {
		if !strings.Contains(text, want) {
			t.Errorf("output lacks %q:\n%s", want, text)
		}
	}

	tr := parseMergedTrace(t, tracePath)
	if viol := VerifyMergedTrace(tr, false); len(viol) != 0 {
		t.Errorf("recovery trace violates lenient invariants: %v", viol)
	}
	kinds := map[obs.Kind]int{}
	recoveryLane := false
	for _, e := range tr.Events {
		kinds[e.Kind]++
	}
	for _, l := range tr.Lanes {
		if l.Name == "recovery" {
			recoveryLane = true
		}
	}
	if !recoveryLane {
		t.Error("merged trace has no recovery lane")
	}
	if kinds[obs.KPeerDown] == 0 {
		t.Error("merged trace records no peer-down instant despite the injected crash")
	}
	if kinds[obs.KRejoin] == 0 && kinds[obs.KReplay] == 0 {
		t.Error("merged trace records neither a rejoin nor a replay instant")
	}

	// Strict check-trace must reject it; lenient must accept it.
	strict := exec.Command(bin, "-check-trace", tracePath, "-problem", "lcs2")
	if out, err := strict.CombinedOutput(); err == nil {
		t.Errorf("strict -check-trace accepted a recovery trace with orphaned sends:\n%s", out)
	}
	lenient := exec.Command(bin, "-check-trace", tracePath, "-problem", "lcs2", "-trace-lenient")
	if out, err := lenient.CombinedOutput(); err != nil {
		t.Errorf("lenient -check-trace rejected the recovery trace: %v\n%s", err, out)
	}
}

// TestDistributedTracingOverheadGuard bounds what the cross-rank
// tracing machinery costs a run that does NOT trace: with no tracer
// attached, DATA frames still carry the aligned send timestamp and the
// transport still runs the clock-sync handshake, and that full armed
// path must stay within 5% of the same job with clock sync disabled —
// the closest reachable stand-in for the pre-observability transport.
// Min-of-N wall times are compared to shed scheduler noise.
func TestDistributedTracingOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping timing-sensitive guard in -short mode")
	}
	p, err := problems.Get("lcs2")
	if err != nil {
		t.Fatal(err)
	}
	params := p.DefaultParams // the paper-scale lcs2 instance

	const rounds = 7
	minWall := func(optsFn func(r int, o *tcp.Options)) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < rounds; i++ {
			start := time.Now()
			runDistributedTCPOpts(t, p, params, 2, 2, optsFn, nil)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	// Interleave a warmup of each side before timing.
	runDistributedTCP(t, p, params, 2, 2)
	baseline := minWall(func(r int, o *tcp.Options) { o.DisableClockSync = true })
	armed := minWall(nil)

	ratio := float64(armed) / float64(baseline)
	t.Logf("two-rank lcs2 wall: baseline %v, tracing-armed %v, ratio %.3f", baseline, armed, ratio)
	if ratio > 1.05 {
		t.Errorf("untraced runs pay %.1f%% for the cross-rank tracing path, want < 5%% (baseline %v, armed %v)",
			(ratio-1)*100, baseline, armed)
	}
}
