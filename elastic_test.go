package dpgen

import (
	"fmt"
	"math"
	"net"
	"runtime"
	"testing"
	"time"

	"dpgen/internal/engine"
	"dpgen/internal/mpi/tcp"
	"dpgen/internal/problems"
	"dpgen/internal/tiling"
)

// TestElasticBitIdentical is the end-to-end elasticity check: a
// four-process mesh starts with only ranks {0, 1} owning tiles, ranks
// 2 and 3 announce themselves as joiners and are admitted once rank 0
// has executed 8 tiles (2 -> 4), and rank 1 requests a voluntary leave
// after 4 tiles and is stripped of its remaining work once the scale
// schedule has been honoured (4 -> 3). Every rank of the elastic run
// must produce the exact value of the fixed-membership in-memory run
// and of the serial reference; the per-rank executed-tile counts must
// sum to the total tile count (no tile re-executed across the view
// changes); and no goroutine may outlive the run.
func TestElasticBitIdentical(t *testing.T) {
	for _, name := range []string{"bandit2", "lcs2"} {
		name := name
		t.Run(name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			p, err := problems.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			params := p.DefaultParams
			serial := p.Serial(params)

			const world, threads = 4, 2
			reftl, err := tiling.New(p.Spec)
			if err != nil {
				t.Fatal(err)
			}
			// Fixed-membership reference: the same problem on a plain
			// two-rank in-memory run (the member set the job starts with).
			ref, err := engine.Run(reftl, p.Kernel, params, engine.Config{Nodes: 2, Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			var totalTiles int64
			for _, st := range ref.Stats {
				totalTiles += st.TilesExecuted
			}

			lns := make([]net.Listener, world)
			peers := make([]string, world)
			for r := range lns {
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				lns[r] = ln
				peers[r] = ln.Addr().String()
			}

			elastic := func(r int) engine.ElasticConfig {
				ec := engine.ElasticConfig{
					Enabled: true,
					Members: []int{0, 1},
				}
				switch r {
				case 0:
					ec.ScaleAt = []engine.ScaleEvent{{AfterTiles: 8, Delta: +2}}
					ec.ExpectLeaves = 1
				case 1:
					ec.LeaveAfterTiles = 4
				default:
					ec.JoinRequest = true
				}
				return ec
			}

			type outcome struct {
				rank int
				res  *engine.Result
				err  error
			}
			done := make(chan outcome, world)
			for r := 0; r < world; r++ {
				go func(r int) {
					tl, err := tiling.New(p.Spec)
					if err != nil {
						done <- outcome{r, nil, err}
						return
					}
					tr, err := tcp.Dial(r, peers, tcp.Options{
						DialTimeout: 15 * time.Second,
						Listener:    lns[r],
					})
					if err != nil {
						done <- outcome{r, nil, err}
						return
					}
					res, err := engine.Run(tl, p.Kernel, params, engine.Config{
						Transport: tr,
						Threads:   threads,
						Elastic:   elastic(r),
					})
					done <- outcome{r, res, err}
				}(r)
			}

			results := make([]*engine.Result, world)
			for i := 0; i < world; i++ {
				select {
				case oc := <-done:
					if oc.err != nil {
						t.Fatalf("rank %d: %v", oc.rank, oc.err)
					}
					results[oc.rank] = oc.res
				case <-time.After(120 * time.Second):
					t.Fatal("elastic run never finished")
				}
			}

			// Bit-identity: every rank's merged result equals both the
			// fixed-membership run and the serial reference.
			for r, res := range results {
				if res.Value != ref.Value {
					t.Errorf("rank %d: Value %.17g != fixed-membership %.17g", r, res.Value, ref.Value)
				}
				if res.Max != ref.Max && !(math.IsNaN(res.Max) && math.IsNaN(ref.Max)) {
					t.Errorf("rank %d: Max %.17g != fixed-membership %.17g", r, res.Max, ref.Max)
				}
				got := res.Value
				if p.UseMax {
					got = res.Max
				}
				if got != serial {
					t.Errorf("rank %d: elastic run %.17g != serial reference %.17g", r, got, serial)
				}
			}

			// Exactly-once across every membership change: the per-rank
			// executed totals partition the tile space.
			var sumTiles int64
			for r, res := range results {
				sumTiles += res.Stats[r].TilesExecuted
			}
			if sumTiles != totalTiles {
				t.Errorf("elastic ranks executed %d tiles, want exactly %d (no re-execution, no loss)",
					sumTiles, totalTiles)
			}

			// Both view changes (the join and the leave) reached every rank.
			for r, res := range results {
				if ep := res.Stats[r].Epochs; ep < 2 {
					t.Errorf("rank %d applied %d membership epochs, want >= 2", r, ep)
				}
			}
			// The join moved live tiles onto at least one joiner, and the
			// leave moved rank 1's remaining tiles off it.
			if in := results[2].Stats[2].TilesMigratedIn + results[3].Stats[3].TilesMigratedIn; in == 0 {
				t.Error("joiners absorbed no migrated tiles")
			}
			if out := results[1].Stats[1].TilesMigratedOut; out == 0 {
				t.Error("leaver migrated no tiles out")
			}

			// Everything is closed; the process must be back to its
			// pre-test goroutine count (give the runtime time to reap).
			deadline := time.Now().Add(10 * time.Second)
			for {
				if n := runtime.NumGoroutine(); n <= before {
					break
				} else if time.Now().After(deadline) {
					t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}

// TestElasticConfigRejections pins the compositions elastic membership
// refuses: in-process runs (nothing to join or leave), PollingRecv and
// Checkpoint (both own the progress/quiescence machinery a view change
// repurposes), and member lists that omit the coordinator.
func TestElasticConfigRejections(t *testing.T) {
	p, err := problems.Get("bandit2")
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunProblem(p, p.DefaultParams, Config{
		Nodes:   2,
		Elastic: ElasticConfig{Enabled: true},
	})
	if err == nil {
		t.Fatal("in-process elastic run was not rejected")
	}

	lns := make([]net.Listener, 2)
	peers := make([]string, 2)
	for r := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		lns[r] = ln
		peers[r] = ln.Addr().String()
	}
	bad := []Config{
		{PollingRecv: true, Elastic: ElasticConfig{Enabled: true}},
		{Checkpoint: CheckpointConfig{Dir: t.TempDir()}, Elastic: ElasticConfig{Enabled: true}},
		{Elastic: ElasticConfig{Enabled: true, Members: []int{1}}},
	}
	for i, cfg := range bad {
		cfg := cfg
		errs := make(chan error, 2)
		for r := 0; r < 2; r++ {
			go func(r int) {
				tr, err := tcp.Dial(r, peers, tcp.Options{DialTimeout: 10 * time.Second, Listener: lns[r]})
				if err != nil {
					errs <- fmt.Errorf("dial: %w", err)
					return
				}
				defer tr.Close()
				c := cfg
				c.Transport = tr
				_, err = RunProblem(p, p.DefaultParams, c)
				errs <- err
			}(r)
		}
		for r := 0; r < 2; r++ {
			select {
			case err := <-errs:
				if err == nil {
					t.Errorf("config %d: invalid elastic composition was not rejected", i)
				}
			case <-time.After(30 * time.Second):
				t.Fatalf("config %d: rejection never returned", i)
			}
		}
	}
}
