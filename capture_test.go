package dpgen

import "testing"

func TestTableCaptureAndTraceback(t *testing.T) {
	// Solve a 2-D path-count problem, capture all cells, and walk a
	// value-preserving path from the goal to the start face — the
	// Section VII-A traceback pattern.
	sp, err := NewSpec("paths", []string{"N"}, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	sp.MustConstrain("0 <= x <= N")
	sp.MustConstrain("0 <= y <= N")
	sp.AddDep("r", 1, 0)
	sp.AddDep("d", 0, 1)
	sp.TileWidths = []int64{4, 4}
	kernel := func(c *Ctx) {
		if c.X[0] == c.P[0] && c.X[1] == c.P[0] {
			c.V[c.Loc] = 1
			return
		}
		var v float64
		if c.DepValid[0] {
			v += c.V[c.DepLoc[0]]
		}
		if c.DepValid[1] {
			v += c.V[c.DepLoc[1]]
		}
		c.V[c.Loc] = v
	}
	N := int64(9)
	tab := NewTable()
	res, err := Run(sp, kernel, []int64{N}, Config{Nodes: 2, Threads: 3, OnCell: tab.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	// C(18,9) = 48620 monotone lattice paths.
	if res.Value != 48620 {
		t.Fatalf("Value = %v, want 48620", res.Value)
	}
	if want := (N + 1) * (N + 1); int64(tab.Len()) != want {
		t.Fatalf("captured %d cells, want %d", tab.Len(), want)
	}
	// Traceback: from (0,0), repeatedly step to a neighbour whose count
	// is positive, reaching (N,N) in exactly 2N steps.
	x, y := int64(0), int64(0)
	steps := 0
	for x < N || y < N {
		switch {
		case x < N && tab.At(x+1, y) > 0:
			x++
		case y < N:
			y++
		default:
			t.Fatalf("stuck at (%d,%d)", x, y)
		}
		steps++
		if steps > int(2*N) {
			t.Fatal("traceback too long")
		}
	}
	if steps != int(2*N) {
		t.Fatalf("traceback took %d steps, want %d", steps, 2*N)
	}
	if _, ok := tab.Get(N+1, 0); ok {
		t.Error("out-of-space cell present")
	}
}

func TestTableAtPanicsOnMissing(t *testing.T) {
	tab := NewTable()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tab.At(1, 2)
}
