package dpgen

import (
	"math"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dpgen/internal/engine"
	"dpgen/internal/mpi/tcp"
	"dpgen/internal/problems"
	"dpgen/internal/tiling"
)

// runDistributedTCP executes one problem as nranks engine.Run calls,
// each holding its own TCP transport endpoint over loopback — the
// in-process analog of nranks separate OS processes (the process-level
// version is TestDprunDistributedSmoke). Every rank's Result is
// returned.
func runDistributedTCP(tb testing.TB, p *problems.Problem, params []int64, nranks, threads int) []*engine.Result {
	tb.Helper()
	return runDistributedTCPOpts(tb, p, params, nranks, threads, nil, nil)
}

// runDistributedTCPOpts is runDistributedTCP with per-rank hooks:
// optsFn may adjust rank r's transport options and cfgFn its engine
// config (e.g. to attach a tracer) before the rank starts.
func runDistributedTCPOpts(tb testing.TB, p *problems.Problem, params []int64, nranks, threads int,
	optsFn func(r int, o *tcp.Options), cfgFn func(r int, c *engine.Config)) []*engine.Result {
	tb.Helper()
	lns := make([]net.Listener, nranks)
	peers := make([]string, nranks)
	for r := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		lns[r] = ln
		peers[r] = ln.Addr().String()
	}
	results := make([]*engine.Result, nranks)
	errs := make([]error, nranks)
	var wg sync.WaitGroup
	for r := 0; r < nranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// Each rank recomputes the analysis itself, as separate
			// processes would.
			tl, err := tiling.New(p.Spec)
			if err != nil {
				errs[r] = err
				return
			}
			opts := tcp.Options{
				DialTimeout: 15 * time.Second,
				Listener:    lns[r],
			}
			if optsFn != nil {
				optsFn(r, &opts)
			}
			tr, err := tcp.Dial(r, peers, opts)
			if err != nil {
				errs[r] = err
				return
			}
			cfg := engine.Config{
				Transport: tr,
				Threads:   threads,
			}
			if cfgFn != nil {
				cfgFn(r, &cfg)
			}
			results[r], errs[r] = engine.Run(tl, p.Kernel, params, cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			tb.Fatalf("rank %d: %v", r, err)
		}
	}
	return results
}

// TestDistributedTCPEquivalence is the sibling of
// TestFastPathEquivalence for the TCP transport: a two-rank run over
// real localhost sockets must produce bit-identical Value and Max to
// the in-memory transport with the same node count, on every rank, and
// match the serial reference exactly.
func TestDistributedTCPEquivalence(t *testing.T) {
	for _, name := range []string{"bandit2", "lcs2", "mcm", "obst", "knap"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := problems.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			params := p.DefaultParams
			serial := p.Serial(params)

			tl, err := tiling.New(p.Spec)
			if err != nil {
				t.Fatal(err)
			}
			const nranks, threads = 2, 2
			ref, err := engine.Run(tl, p.Kernel, params, engine.Config{Nodes: nranks, Threads: threads})
			if err != nil {
				t.Fatal(err)
			}

			results := runDistributedTCP(t, p, params, nranks, threads)
			for r, res := range results {
				if res.Value != ref.Value {
					t.Errorf("rank %d: Value tcp %.17g != inmem %.17g", r, res.Value, ref.Value)
				}
				if res.Max != ref.Max && !(math.IsNaN(res.Max) && math.IsNaN(ref.Max)) {
					t.Errorf("rank %d: Max tcp %.17g != inmem %.17g", r, res.Max, ref.Max)
				}
				if res.Messages != ref.Messages || res.Elems != ref.Elems {
					t.Errorf("rank %d: traffic tcp %d msgs/%d elems != inmem %d/%d",
						r, res.Messages, res.Elems, ref.Messages, ref.Elems)
				}
			}
			got := results[0].Value
			if p.UseMax {
				got = results[0].Max
			}
			if got != serial {
				t.Errorf("distributed %.17g != serial reference %.17g", got, serial)
			}
		})
	}
}

// TestDprunDistributedSmoke builds cmd/dprun and runs a real
// two-OS-process distributed bandit2 job through the -launch
// convenience forker, checking both processes agree with the serial
// reference.
func TestDprunDistributedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process-spawning test in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "dprun")
	build := exec.Command("go", "build", "-o", bin, "./cmd/dprun")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/dprun: %v\n%s", err, out)
	}
	p, err := problems.Get("bandit2")
	if err != nil {
		t.Fatal(err)
	}
	serial := p.Serial(p.DefaultParams)

	cmd := exec.Command(bin, "-problem", "bandit2", "-distributed", "-launch", "2", "-threads", "2", "-check")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("dprun -distributed -launch 2: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "OK (bit-identical)") {
		t.Errorf("output lacks serial-reference check (serial value %.17g):\n%s", serial, text)
	}
}

// TestDprunSupervisorRecovery is the OS-process fault-tolerance smoke:
// dprun's supervisor launches two ranks with crash injection in rank 1,
// reaps the dead child, restarts it with -resume/-rejoin, and the job
// must still finish bit-identical to the serial reference with exit
// status 0. A second run without a checkpoint directory must instead
// propagate the crash as a non-zero exit with the child's stderr tail.
func TestDprunSupervisorRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process-spawning test in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "dprun")
	build := exec.Command("go", "build", "-o", bin, "./cmd/dprun")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/dprun: %v\n%s", err, out)
	}

	t.Run("recovers", func(t *testing.T) {
		cmd := exec.Command(bin, "-problem", "bandit2", "-distributed", "-launch", "2", "-threads", "2",
			"-ckpt-dir", t.TempDir(), "-ckpt-every", "8", "-kill-rank", "1", "-crash-after-tiles", "20",
			"-stats", "-check")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("supervised recovery run: %v\n%s", err, out)
		}
		text := string(out)
		for _, want := range []string{"OK (bit-identical)", "recovered after", "injected crash after 20 tiles"} {
			if !strings.Contains(text, want) {
				t.Errorf("output lacks %q:\n%s", want, text)
			}
		}
	})

	t.Run("propagates-failure", func(t *testing.T) {
		cmd := exec.Command(bin, "-problem", "bandit2", "-distributed", "-launch", "2", "-threads", "2",
			"-kill-rank", "1", "-crash-after-tiles", "20")
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("unrecoverable crash exited 0:\n%s", out)
		}
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("run failed to start: %v", err)
		}
		if code := ee.ExitCode(); code == 0 {
			t.Errorf("exit code = %d, want non-zero", code)
		}
		text := string(out)
		for _, want := range []string{"supervisor: rank 1 failed", "injected crash after 20 tiles"} {
			if !strings.Contains(text, want) {
				t.Errorf("output lacks %q:\n%s", want, text)
			}
		}
	})
}
