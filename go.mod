module dpgen

go 1.22
