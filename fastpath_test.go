package dpgen

import (
	"fmt"
	"math"
	"testing"

	"dpgen/internal/engine"
	"dpgen/internal/problems"
	"dpgen/internal/tiling"
)

// TestFastPathEquivalence is the bit-for-bit contract of the interior
// fast path: for every builtin problem and every runtime configuration,
// the fast path and the forced-slow path (DisableFastPath) must produce
// identical Result.Value, identical Result.Max, and identical per-node
// CellsComputed — and the value must equal the serial reference solver
// exactly. Floating-point results are compared with ==, not a tolerance:
// the fast path reorders no arithmetic, it only skips checks that are
// statically known to pass.
func TestFastPathEquivalence(t *testing.T) {
	for _, name := range problems.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := problems.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			tl, err := tiling.New(p.Spec)
			if err != nil {
				t.Fatal(err)
			}
			params := p.DefaultParams
			serial := p.Serial(params)
			for _, nodes := range []int{1, 4} {
				for _, threads := range []int{1, 4} {
					for _, polling := range []bool{false, true} {
						for _, groups := range []int{1, 2} {
							// The scheduler axis rides on the group axis
							// (it is orthogonal to message handling, so the
							// full cross product buys nothing): groups=1
							// runs the default hybrid scheduler, groups=2
							// forces pure-dynamic dependence counting.
							sched := engine.SchedHybrid
							if groups == 2 {
								sched = engine.SchedDynamic
							}
							cfg := engine.Config{
								Nodes: nodes, Threads: threads,
								PollingRecv: polling, QueueGroups: groups,
								Sched: sched,
							}
							label := fmt.Sprintf("nodes=%d threads=%d polling=%v groups=%d sched=%v",
								nodes, threads, polling, groups, sched)
							fast, err := engine.Run(tl, p.Kernel, params, cfg)
							if err != nil {
								t.Fatalf("%s: fast: %v", label, err)
							}
							slowCfg := cfg
							slowCfg.DisableFastPath = true
							slow, err := engine.Run(tl, p.Kernel, params, slowCfg)
							if err != nil {
								t.Fatalf("%s: slow: %v", label, err)
							}
							if fast.Value != slow.Value {
								t.Fatalf("%s: Value fast %.17g != slow %.17g", label, fast.Value, slow.Value)
							}
							if fast.Max != slow.Max && !(math.IsNaN(fast.Max) && math.IsNaN(slow.Max)) {
								t.Fatalf("%s: Max fast %.17g != slow %.17g", label, fast.Max, slow.Max)
							}
							for i := range fast.Stats {
								if fast.Stats[i].CellsComputed != slow.Stats[i].CellsComputed {
									t.Fatalf("%s: node %d CellsComputed fast %d != slow %d",
										label, i, fast.Stats[i].CellsComputed, slow.Stats[i].CellsComputed)
								}
							}
							got := fast.Value
							if p.UseMax {
								got = fast.Max
							}
							if got != serial {
								t.Fatalf("%s: hybrid %.17g != serial reference %.17g", label, got, serial)
							}
						}
					}
				}
			}
		})
	}
}
