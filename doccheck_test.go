package dpgen

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// docCheckedPackages are the packages held to the every-exported-
// identifier-documented bar, enforced in CI (see .github/workflows/
// ci.yml). Grow this list as packages reach full coverage.
var docCheckedPackages = []string{
	"internal/mpi",
	"internal/mpi/tcp",
	"internal/engine",
	"internal/tiling",
	"internal/obs",
	"internal/serve",
}

// TestGodocCoverage fails for every exported top-level identifier (and
// every method on an exported type) in docCheckedPackages that lacks a
// doc comment. A const/var/type group counts as documented when the
// group has a doc comment.
func TestGodocCoverage(t *testing.T) {
	for _, dir := range docCheckedPackages {
		dir := dir
		t.Run(strings.ReplaceAll(dir, "/", "_"), func(t *testing.T) {
			fset := token.NewFileSet()
			pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
				return !strings.HasSuffix(fi.Name(), "_test.go")
			}, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			for _, pkg := range pkgs {
				for _, f := range pkg.Files {
					for _, missing := range undocumented(fset, f) {
						t.Error(missing)
					}
				}
			}
		})
	}
}

// undocumented returns one message per exported identifier in f that
// has no doc comment.
func undocumented(fset *token.FileSet, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil {
				recv := receiverTypeName(d.Recv)
				if !ast.IsExported(recv) {
					continue
				}
				report(d.Pos(), "method", recv+"."+d.Name.Name)
			} else {
				report(d.Pos(), "function", d.Name.Name)
			}
		case *ast.GenDecl:
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !groupDoc && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					if groupDoc || s.Doc != nil {
						continue
					}
					for _, name := range s.Names {
						if name.IsExported() {
							report(s.Pos(), "const/var", name.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// receiverTypeName extracts the bare type name of a method receiver
// (stripping pointers and type parameters).
func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}
