// Command dprun executes a built-in problem on the hybrid runtime and
// reports the goal value, timing and per-node statistics.
//
// Usage:
//
//	dprun -problem bandit2 -params 40 -nodes 4 -threads 6
//	dprun -problem lcs3 -params 40,36,32 -check
//
// -check additionally solves the problem with the straightforward
// serial reference and verifies the values are bit-identical.
//
// Distributed mode runs each rank as a separate OS process connected
// over TCP (see docs/TRANSPORT.md). Either start every rank yourself:
//
//	dprun -problem bandit2 -distributed -rank 0 -peers host0:7000,host1:7000
//	dprun -problem bandit2 -distributed -rank 1 -peers host0:7000,host1:7000
//
// or let dprun fork a local worker process per rank:
//
//	dprun -problem bandit2 -distributed -launch 2 -threads 2 -check
//
// With -ckpt-dir the job is fault tolerant: each rank checkpoints its
// progress, peer death is detected by heartbeats instead of hanging the
// mesh, and the -launch supervisor restarts a crashed non-root rank
// with -resume -rejoin so the job still finishes with bit-identical
// results (see docs/FAULT_TOLERANCE.md):
//
//	dprun -problem bandit2 -distributed -launch 2 -ckpt-dir /tmp/ck -kill-rank 1 -crash-after-tiles 40 -check
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"dpgen"
	"dpgen/internal/problems"
)

func main() {
	var (
		name     = flag.String("problem", "bandit2", "built-in problem: "+strings.Join(problems.Names(), ", "))
		paramStr = flag.String("params", "", "comma-separated parameter values (default: problem defaults)")
		nodes    = flag.Int("nodes", 1, "simulated MPI ranks (ignored with -distributed)")
		distrib  = flag.Bool("distributed", false, "run as one rank of a multi-process TCP job (with -rank/-peers), or fork a local job (with -launch)")
		rank     = flag.Int("rank", -1, "this process's rank in the -peers list (with -distributed)")
		peersStr = flag.String("peers", "", "comma-separated host:port listen addresses, one per rank, in rank order (with -distributed)")
		launch   = flag.Int("launch", 0, "fork this many local worker processes instead of joining a mesh (with -distributed)")
		threads  = flag.Int("threads", 1, "worker threads per node")
		sendBufs = flag.Int("sendbufs", 4, "send buffers per node")
		recvBufs = flag.Int("recvbufs", 16, "receive buffers per node")
		groups   = flag.Int("groups", 1, "ready-queue groups per node (Sec VII-C)")
		polling  = flag.Bool("polling", false, "poll for edges in workers instead of a receiver goroutine (Sec V-A)")
		priority = flag.String("priority", "column", "tile priority: column, levelset, fifo")
		balOpt   = flag.String("balance", "prefix", "load balancer: prefix, hyperplane")
		check    = flag.Bool("check", false, "verify against the serial reference solver")
		stats    = flag.Bool("stats", false, "print per-node statistics")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON timeline (Perfetto-loadable) to this file")
		metrics  = flag.Bool("metrics", false, "print a Prometheus text-exposition snapshot of the run")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile (after the run) to this file")

		ckptDir     = flag.String("ckpt-dir", "", "checkpoint directory; enables the fault-tolerance layer (docs/FAULT_TOLERANCE.md)")
		ckptEvery   = flag.Int64("ckpt-every", 0, "checkpoint cadence in executed tiles (default 64 with -ckpt-dir)")
		resume      = flag.Bool("resume", false, "restore this rank's state from its checkpoint before running")
		rejoin      = flag.Bool("rejoin", false, "reconnect into a live recovery mesh after a crash (implies -resume)")
		crashTiles  = flag.Int64("crash-after-tiles", 0, "fault injection: exit(3) after this rank executes N tiles")
		killRank    = flag.Int("kill-rank", -1, "fault injection for -launch: forward -crash-after-tiles to this rank only")
		maxRestarts = flag.Int("max-restarts", 3, "per-rank restart budget for the -launch supervisor (with -ckpt-dir)")
	)
	flag.Parse()

	if *launch > 0 {
		if !*distrib {
			fatal(fmt.Errorf("-launch requires -distributed"))
		}
		os.Exit(launchLocal(*launch, *maxRestarts, *ckptDir, *killRank, *crashTiles))
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	p, err := problems.Get(*name)
	if err != nil {
		fatal(err)
	}
	params := p.DefaultParams
	if *paramStr != "" {
		params = nil
		for _, f := range strings.Split(*paramStr, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad -params entry %q: %v", f, err))
			}
			params = append(params, v)
		}
	}
	cfg := dpgen.Config{
		Nodes: *nodes, Threads: *threads,
		SendBufs: *sendBufs, RecvBufs: *recvBufs,
		QueueGroups: *groups,
		PollingRecv: *polling,
		Checkpoint: dpgen.CheckpointConfig{
			Dir:        *ckptDir,
			EveryTiles: *ckptEvery,
			Resume:     *resume || *rejoin,
		},
	}
	if *crashTiles > 0 {
		cfg.CrashAfterTiles = *crashTiles
		cfg.CrashFn = func() {
			fmt.Fprintf(os.Stderr, "injected crash after %d tiles\n", *crashTiles)
			os.Exit(3)
		}
	}
	if *distrib {
		peers := strings.Split(*peersStr, ",")
		if *peersStr == "" || *rank < 0 || *rank >= len(peers) {
			fatal(fmt.Errorf("-distributed needs -rank in [0,%d) and a -peers address per rank (or -launch N)", len(peers)))
		}
		ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stopSig()
		opts := dpgen.TCPOptions{
			SendBufs: *sendBufs,
			RecvBufs: *recvBufs,
			Recovery: *ckptDir != "",
			Context:  ctx,
		}
		var tr dpgen.Transport
		if *rejoin {
			tr, err = dpgen.DialTCPRejoin(*rank, peers, opts)
		} else {
			tr, err = dpgen.DialTCP(*rank, peers, opts)
		}
		if err != nil {
			fatal(err)
		}
		cfg.Transport = tr
	}
	switch *priority {
	case "column":
		cfg.Priority = dpgen.ColumnMajor
	case "levelset":
		cfg.Priority = dpgen.LevelSet
	case "fifo":
		cfg.Priority = dpgen.FIFO
	default:
		fatal(fmt.Errorf("unknown -priority %q", *priority))
	}
	switch *balOpt {
	case "prefix":
		cfg.Balance = dpgen.Prefix
	case "hyperplane":
		cfg.Balance = dpgen.Hyperplane
	default:
		fatal(fmt.Errorf("unknown -balance %q", *balOpt))
	}

	var tracer *dpgen.Tracer
	if *traceOut != "" || *metrics {
		tracer = dpgen.NewTracer()
		cfg.Tracer = tracer
	}
	tl, err := dpgen.Analyze(p.Spec)
	if err != nil {
		fatal(err)
	}
	res, err := dpgen.RunAnalyzed(tl, p.Kernel, params, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("problem   %s\n", p.Spec.Name)
	if *distrib {
		fmt.Printf("rank      %d of %d (distributed over TCP)\n", *rank, len(res.Stats))
	}
	fmt.Printf("params    %v\n", params)
	fmt.Printf("value     %.17g\n", res.Value)
	fmt.Printf("max       %.17g\n", res.Max)
	fmt.Printf("init      %s\n", res.InitTime)
	fmt.Printf("total     %s\n", res.TotalTime)
	fmt.Printf("messages  %d (%d elements)\n", res.Messages, res.Elems)
	if *stats {
		for i, st := range res.Stats {
			if *distrib && i != *rank {
				continue // remote ranks report their own stats
			}
			fmt.Printf("node %d: tiles %d cells %d sent %d recv %d local %d peak_edges %d peak_elems %d idle %s send_stall %s\n",
				i, st.TilesExecuted, st.CellsComputed, st.EdgesSentRemote, st.EdgesRecvRemote,
				st.EdgesLocal, st.PeakPendingEdges, st.PeakBufferedElems, st.IdleTime, st.SendStallTime)
			if *ckptDir != "" {
				fmt.Printf("node %d: ckpts %d ckpt_bytes %d dup_dropped %d hb_misses %d peer_restarts %d\n",
					i, st.Checkpoints, st.CheckpointBytes, st.EdgesDroppedDup,
					st.HeartbeatMisses, st.PeerRestarts)
			}
		}
	}
	if tracer != nil {
		snap := tracer.Snapshot()
		rep, err := dpgen.CriticalPath(tl, snap)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("critpath  %s\n", rep)
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			if err := snap.WriteChrome(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("trace     %s (%d events, %d lanes)\n", *traceOut, len(snap.Events), len(snap.Lanes))
		}
		if *metrics {
			if err := snap.Metrics().WritePrometheus(os.Stdout); err != nil {
				fatal(err)
			}
		}
	}
	if *check {
		start := time.Now()
		want := p.Serial(params)
		got := res.Value
		if p.UseMax {
			got = res.Max
		}
		fmt.Printf("serial    %.17g (%s)\n", want, time.Since(start))
		if want != got {
			fatal(fmt.Errorf("MISMATCH: hybrid %v != serial %v", got, want))
		}
		fmt.Println("check     OK (bit-identical)")
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // settle allocations so the profile shows retained heap
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

// childExit is one supervised worker process's termination report.
type childExit struct {
	rank int
	err  error    // nil on clean exit
	code int      // process exit code (-1 when unknown)
	tail []string // last output lines, for the failure diagnostic
}

// tailLines is how many trailing output lines the supervisor keeps per
// child for its failure diagnostic.
const tailLines = 12

// launchLocal is the local launcher and supervisor behind -launch N: it
// picks N loopback ports, re-executes this binary once per rank with
// -distributed -rank r -peers ..., forwarding the other explicitly-set
// flags (except per-process outputs like -trace and the profiles, whose
// filenames would collide), and prefixes each child's output with its
// rank. With -kill-rank it forwards the -crash-after-tiles fault
// injection to that rank only.
//
// When a child dies and checkpointing is on (-ckpt-dir), the supervisor
// restarts the crashed rank with -resume -rejoin — the rank reloads its
// checkpoint and the surviving peers replay their retained sends — up
// to maxRestarts times per rank. Rank 0 coordinates the result merge
// and is not restartable. On a terminal failure the remaining children
// are killed and the first failed child's exit status and output tail
// are propagated.
func launchLocal(n, maxRestarts int, ckptDir string, killRank int, crashTiles int64) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	peers := make([]string, n)
	for r := range peers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		peers[r] = ln.Addr().String()
		// Freed here and re-bound by the child; the dial retry in the
		// transport rides out the window.
		ln.Close()
	}
	var common []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "launch", "distributed", "rank", "peers", "nodes",
			"trace", "metrics", "cpuprofile", "memprofile",
			"kill-rank", "max-restarts", "crash-after-tiles",
			"resume", "rejoin":
			return
		}
		common = append(common, "-"+f.Name+"="+f.Value.String())
	})

	var mu sync.Mutex // serializes output lines and the process table
	procs := make(map[int]*exec.Cmd, n)
	exits := make(chan childExit, n)

	// start launches (or relaunches) rank r and begins streaming its
	// output; extra carries the restart or fault-injection flags.
	start := func(r int, extra ...string) error {
		args := append([]string{
			"-distributed",
			"-rank", strconv.Itoa(r),
			"-peers", strings.Join(peers, ","),
		}, common...)
		args = append(args, extra...)
		cmd := exec.Command(exe, args...)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		cmd.Stderr = cmd.Stdout // one prefixed stream per child
		if err := cmd.Start(); err != nil {
			return err
		}
		mu.Lock()
		procs[r] = cmd
		mu.Unlock()
		go func() {
			var tail []string
			sc := bufio.NewScanner(stdout)
			sc.Buffer(make([]byte, 64*1024), 1024*1024)
			for sc.Scan() {
				mu.Lock()
				fmt.Printf("[rank %d] %s\n", r, sc.Text())
				mu.Unlock()
				tail = append(tail, sc.Text())
				if len(tail) > tailLines {
					tail = tail[1:]
				}
			}
			ex := childExit{rank: r, err: cmd.Wait(), code: -1, tail: tail}
			if st := cmd.ProcessState; st != nil {
				ex.code = st.ExitCode()
			}
			exits <- ex
		}()
		return nil
	}

	for r := 0; r < n; r++ {
		var extra []string
		if r == killRank && crashTiles > 0 {
			extra = []string{"-crash-after-tiles", strconv.FormatInt(crashTiles, 10)}
		}
		if err := start(r, extra...); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	restarts := make(map[int]int, n)
	running := n
	ret := 0
	for running > 0 {
		ex := <-exits
		if ex.err == nil {
			running--
			continue
		}
		if ret != 0 {
			// Already failing: just reap the remaining children.
			running--
			continue
		}
		recoverable := ckptDir != "" && ex.rank != 0 && restarts[ex.rank] < maxRestarts
		if recoverable {
			restarts[ex.rank]++
			fmt.Fprintf(os.Stderr, "supervisor: rank %d exited (%v); restart %d/%d with -resume -rejoin\n",
				ex.rank, ex.err, restarts[ex.rank], maxRestarts)
			if err := start(ex.rank, "-resume", "-rejoin"); err == nil {
				continue
			} else {
				fmt.Fprintf(os.Stderr, "supervisor: restart of rank %d failed: %v\n", ex.rank, err)
			}
		}
		// Terminal: report the failure, propagate the child's status and
		// take the rest of the mesh down rather than letting it hang out
		// its peer-down timeout.
		running--
		ret = ex.code
		if ret <= 0 {
			ret = 1
		}
		fmt.Fprintf(os.Stderr, "supervisor: rank %d failed (%v, exit code %d) after %d restarts\n",
			ex.rank, ex.err, ex.code, restarts[ex.rank])
		for _, line := range ex.tail {
			fmt.Fprintf(os.Stderr, "supervisor: [rank %d] %s\n", ex.rank, line)
		}
		mu.Lock()
		for r, cmd := range procs {
			if r != ex.rank && cmd.Process != nil {
				cmd.Process.Kill() // no-op error if it already exited
			}
		}
		mu.Unlock()
	}
	if ret == 0 {
		for r, k := range restarts {
			fmt.Printf("supervisor: rank %d recovered after %d restart(s)\n", r, k)
		}
	}
	return ret
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
