// Command dprun executes a built-in problem on the hybrid runtime and
// reports the goal value, timing and per-node statistics.
//
// Usage:
//
//	dprun -problem bandit2 -params 40 -nodes 4 -threads 6
//	dprun -problem lcs3 -params 40,36,32 -check
//
// -check additionally solves the problem with the straightforward
// serial reference and verifies the values are bit-identical.
//
// Distributed mode runs each rank as a separate OS process connected
// over TCP (see docs/TRANSPORT.md). Either start every rank yourself:
//
//	dprun -problem bandit2 -distributed -rank 0 -peers host0:7000,host1:7000
//	dprun -problem bandit2 -distributed -rank 1 -peers host0:7000,host1:7000
//
// or let dprun fork a local worker process per rank:
//
//	dprun -problem bandit2 -distributed -launch 2 -threads 2 -check
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"dpgen"
	"dpgen/internal/problems"
)

func main() {
	var (
		name     = flag.String("problem", "bandit2", "built-in problem: "+strings.Join(problems.Names(), ", "))
		paramStr = flag.String("params", "", "comma-separated parameter values (default: problem defaults)")
		nodes    = flag.Int("nodes", 1, "simulated MPI ranks (ignored with -distributed)")
		distrib  = flag.Bool("distributed", false, "run as one rank of a multi-process TCP job (with -rank/-peers), or fork a local job (with -launch)")
		rank     = flag.Int("rank", -1, "this process's rank in the -peers list (with -distributed)")
		peersStr = flag.String("peers", "", "comma-separated host:port listen addresses, one per rank, in rank order (with -distributed)")
		launch   = flag.Int("launch", 0, "fork this many local worker processes instead of joining a mesh (with -distributed)")
		threads  = flag.Int("threads", 1, "worker threads per node")
		sendBufs = flag.Int("sendbufs", 4, "send buffers per node")
		recvBufs = flag.Int("recvbufs", 16, "receive buffers per node")
		groups   = flag.Int("groups", 1, "ready-queue groups per node (Sec VII-C)")
		polling  = flag.Bool("polling", false, "poll for edges in workers instead of a receiver goroutine (Sec V-A)")
		priority = flag.String("priority", "column", "tile priority: column, levelset, fifo")
		balOpt   = flag.String("balance", "prefix", "load balancer: prefix, hyperplane")
		check    = flag.Bool("check", false, "verify against the serial reference solver")
		stats    = flag.Bool("stats", false, "print per-node statistics")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON timeline (Perfetto-loadable) to this file")
		metrics  = flag.Bool("metrics", false, "print a Prometheus text-exposition snapshot of the run")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile (after the run) to this file")
	)
	flag.Parse()

	if *launch > 0 {
		if !*distrib {
			fatal(fmt.Errorf("-launch requires -distributed"))
		}
		os.Exit(launchLocal(*launch))
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	p, err := problems.Get(*name)
	if err != nil {
		fatal(err)
	}
	params := p.DefaultParams
	if *paramStr != "" {
		params = nil
		for _, f := range strings.Split(*paramStr, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad -params entry %q: %v", f, err))
			}
			params = append(params, v)
		}
	}
	cfg := dpgen.Config{
		Nodes: *nodes, Threads: *threads,
		SendBufs: *sendBufs, RecvBufs: *recvBufs,
		QueueGroups: *groups,
		PollingRecv: *polling,
	}
	if *distrib {
		peers := strings.Split(*peersStr, ",")
		if *peersStr == "" || *rank < 0 || *rank >= len(peers) {
			fatal(fmt.Errorf("-distributed needs -rank in [0,%d) and a -peers address per rank (or -launch N)", len(peers)))
		}
		tr, err := dpgen.DialTCP(*rank, peers, dpgen.TCPOptions{
			SendBufs: *sendBufs,
			RecvBufs: *recvBufs,
		})
		if err != nil {
			fatal(err)
		}
		cfg.Transport = tr
	}
	switch *priority {
	case "column":
		cfg.Priority = dpgen.ColumnMajor
	case "levelset":
		cfg.Priority = dpgen.LevelSet
	case "fifo":
		cfg.Priority = dpgen.FIFO
	default:
		fatal(fmt.Errorf("unknown -priority %q", *priority))
	}
	switch *balOpt {
	case "prefix":
		cfg.Balance = dpgen.Prefix
	case "hyperplane":
		cfg.Balance = dpgen.Hyperplane
	default:
		fatal(fmt.Errorf("unknown -balance %q", *balOpt))
	}

	var tracer *dpgen.Tracer
	if *traceOut != "" || *metrics {
		tracer = dpgen.NewTracer()
		cfg.Tracer = tracer
	}
	tl, err := dpgen.Analyze(p.Spec)
	if err != nil {
		fatal(err)
	}
	res, err := dpgen.RunAnalyzed(tl, p.Kernel, params, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("problem   %s\n", p.Spec.Name)
	if *distrib {
		fmt.Printf("rank      %d of %d (distributed over TCP)\n", *rank, len(res.Stats))
	}
	fmt.Printf("params    %v\n", params)
	fmt.Printf("value     %.17g\n", res.Value)
	fmt.Printf("max       %.17g\n", res.Max)
	fmt.Printf("init      %s\n", res.InitTime)
	fmt.Printf("total     %s\n", res.TotalTime)
	fmt.Printf("messages  %d (%d elements)\n", res.Messages, res.Elems)
	if *stats {
		for i, st := range res.Stats {
			if *distrib && i != *rank {
				continue // remote ranks report their own stats
			}
			fmt.Printf("node %d: tiles %d cells %d sent %d recv %d local %d peak_edges %d peak_elems %d idle %s send_stall %s\n",
				i, st.TilesExecuted, st.CellsComputed, st.EdgesSentRemote, st.EdgesRecvRemote,
				st.EdgesLocal, st.PeakPendingEdges, st.PeakBufferedElems, st.IdleTime, st.SendStallTime)
		}
	}
	if tracer != nil {
		snap := tracer.Snapshot()
		rep, err := dpgen.CriticalPath(tl, snap)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("critpath  %s\n", rep)
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			if err := snap.WriteChrome(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("trace     %s (%d events, %d lanes)\n", *traceOut, len(snap.Events), len(snap.Lanes))
		}
		if *metrics {
			if err := snap.Metrics().WritePrometheus(os.Stdout); err != nil {
				fatal(err)
			}
		}
	}
	if *check {
		start := time.Now()
		want := p.Serial(params)
		got := res.Value
		if p.UseMax {
			got = res.Max
		}
		fmt.Printf("serial    %.17g (%s)\n", want, time.Since(start))
		if want != got {
			fatal(fmt.Errorf("MISMATCH: hybrid %v != serial %v", got, want))
		}
		fmt.Println("check     OK (bit-identical)")
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // settle allocations so the profile shows retained heap
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

// launchLocal is the convenience forker behind -launch N: it picks N
// loopback ports, re-executes this binary once per rank with
// -distributed -rank r -peers ..., forwarding the other explicitly-set
// flags (except per-process outputs like -trace and the profiles,
// whose filenames would collide), prefixes each child's output with
// its rank, and returns a process exit code.
func launchLocal(n int) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	peers := make([]string, n)
	for r := range peers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		peers[r] = ln.Addr().String()
		// Freed here and re-bound by the child; the dial retry in the
		// transport rides out the window.
		ln.Close()
	}
	var common []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "launch", "distributed", "rank", "peers", "nodes",
			"trace", "metrics", "cpuprofile", "memprofile":
			return
		}
		common = append(common, "-"+f.Name+"="+f.Value.String())
	})

	var wg sync.WaitGroup
	var mu sync.Mutex // serializes output lines across children
	failed := false
	for r := 0; r < n; r++ {
		args := append([]string{
			"-distributed",
			"-rank", strconv.Itoa(r),
			"-peers", strings.Join(peers, ","),
		}, common...)
		cmd := exec.Command(exe, args...)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		cmd.Stderr = cmd.Stdout // one prefixed stream per child
		if err := cmd.Start(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sc := bufio.NewScanner(stdout)
			sc.Buffer(make([]byte, 64*1024), 1024*1024)
			for sc.Scan() {
				mu.Lock()
				fmt.Printf("[rank %d] %s\n", r, sc.Text())
				mu.Unlock()
			}
			if err := cmd.Wait(); err != nil {
				mu.Lock()
				fmt.Fprintf(os.Stderr, "[rank %d] exited: %v\n", r, err)
				failed = true
				mu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	if failed {
		return 1
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
