// Command dprun executes a built-in problem on the hybrid runtime and
// reports the goal value, timing and per-node statistics.
//
// Usage:
//
//	dprun -problem bandit2 -params 40 -nodes 4 -threads 6
//	dprun -problem lcs3 -params 40,36,32 -check
//
// -check additionally solves the problem with the straightforward
// serial reference and verifies the values are bit-identical.
//
// Distributed mode runs each rank as a separate OS process connected
// over TCP (see docs/TRANSPORT.md). Either start every rank yourself:
//
//	dprun -problem bandit2 -distributed -rank 0 -peers host0:7000,host1:7000
//	dprun -problem bandit2 -distributed -rank 1 -peers host0:7000,host1:7000
//
// or let dprun fork a local worker process per rank:
//
//	dprun -problem bandit2 -distributed -launch 2 -threads 2 -check
//
// With -ckpt-dir the job is fault tolerant: each rank checkpoints its
// progress, peer death is detected by heartbeats instead of hanging the
// mesh, and the -launch supervisor restarts a crashed non-root rank
// with -resume -rejoin so the job still finishes with bit-identical
// results (see docs/FAULT_TOLERANCE.md):
//
//	dprun -problem bandit2 -distributed -launch 2 -ckpt-dir /tmp/ck -kill-rank 1 -crash-after-tiles 40 -check
//
// Observability (docs/OBSERVABILITY.md): with -launch, -trace collects
// one clock-aligned Perfetto trace for the whole job (a process group
// per rank, cross-rank send-to-receive flow arrows, recovery instants),
// -report prints the run-wide straggler/critical-path report,
// -stats-json writes machine-readable per-rank statistics, and
// -obs-addr serves live /metrics and /debug/pprof endpoints while the
// job runs:
//
//	dprun -problem lcs2 -distributed -launch 2 -trace out.json -report
//	dprun -check-trace out.json -problem lcs2
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"dpgen"
	"dpgen/internal/obs"
	"dpgen/internal/problems"
)

func main() {
	var (
		name     = flag.String("problem", "bandit2", "built-in problem: "+strings.Join(problems.Names(), ", "))
		paramStr = flag.String("params", "", "comma-separated parameter values (default: problem defaults)")
		nodes    = flag.Int("nodes", 1, "simulated MPI ranks (ignored with -distributed)")
		distrib  = flag.Bool("distributed", false, "run as one rank of a multi-process TCP job (with -rank/-peers), or fork a local job (with -launch)")
		rank     = flag.Int("rank", -1, "this process's rank in the -peers list (with -distributed)")
		peersStr = flag.String("peers", "", "comma-separated host:port listen addresses, one per rank, in rank order (with -distributed)")
		launch   = flag.Int("launch", 0, "fork this many local worker processes instead of joining a mesh (with -distributed)")
		threads  = flag.Int("threads", 1, "worker threads per node")
		sendBufs = flag.Int("sendbufs", 4, "send buffers per node")
		recvBufs = flag.Int("recvbufs", 16, "receive buffers per node")
		groups   = flag.Int("groups", 1, "ready-queue groups per node (Sec VII-C)")
		polling  = flag.Bool("polling", false, "poll for edges in workers instead of a receiver goroutine (Sec V-A)")
		priority = flag.String("priority", "column", "tile priority: column, levelset, fifo")
		sched    = flag.String("sched", "hybrid", "tile scheduler: hybrid (static wavefront + dynamic), dynamic (dependence-count everything)")
		balOpt   = flag.String("balance", "prefix", "load balancer: prefix, hyperplane")
		check    = flag.Bool("check", false, "verify against the serial reference solver")
		stats    = flag.Bool("stats", false, "print per-node statistics")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON timeline (Perfetto-loadable) to this file; with -launch, one clock-aligned merged file for the whole job")
		metrics  = flag.Bool("metrics", false, "print a Prometheus text-exposition snapshot of the run")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile (after the run) to this file")

		heartbeat   = flag.Duration("heartbeat", 0, "heartbeat send interval for recovery-enabled transports (default 250ms; see docs/FAULT_TOLERANCE.md)")
		peerDownTO  = flag.Duration("peer-down-timeout", 0, "how long a down peer may stay down before the job fails (default 30s)")
		ckptDir     = flag.String("ckpt-dir", "", "checkpoint directory; enables the fault-tolerance layer (docs/FAULT_TOLERANCE.md)")
		ckptEvery   = flag.Int64("ckpt-every", 0, "checkpoint cadence in executed tiles (default 64 with -ckpt-dir)")
		resume      = flag.Bool("resume", false, "restore this rank's state from its checkpoint before running")
		rejoin      = flag.Bool("rejoin", false, "reconnect into a live recovery mesh after a crash (implies -resume)")
		crashTiles  = flag.Int64("crash-after-tiles", 0, "fault injection: exit(3) after this rank executes N tiles")
		killRank    = flag.Int("kill-rank", -1, "fault injection for -launch: forward -crash-after-tiles to this rank only")
		maxRestarts = flag.Int("max-restarts", 3, "per-rank restart budget for the -launch supervisor (with -ckpt-dir)")

		elastic        = flag.Bool("elastic", false, "enable elastic membership: ranks may join and leave mid-run (docs/ELASTICITY.md)")
		elasticMembers = flag.String("elastic-members", "", "comma-separated initial member ranks (default: every rank; must include 0)")
		elasticJoin    = flag.Bool("elastic-join", false, "this rank starts as a standby and announces itself as a joiner")
		elasticLeave   = flag.Int64("elastic-leave-after", 0, "request a voluntary leave after this rank executes N tiles")
		scaleAtStr     = flag.String("scale-at", "", "rank-0 scale schedule, comma-separated tiles:delta pairs (e.g. 100:+2,500:-1)")
		expectLeaves   = flag.Int("expect-leaves", 0, "voluntary leaves rank 0 waits for before declaring the membership final")
		elasticInitial = flag.Int("elastic-initial", 0, "with -launch and -elastic: size of the initial member set; the remaining ranks join mid-run")
		leaveRank      = flag.Int("leave-rank", -1, "with -launch and -elastic: forward -elastic-leave-after to this rank only")

		report       = flag.Bool("report", false, "print the run-wide observability report: per-rank breakdowns, load imbalance, stragglers, critical path (implies tracing)")
		statsJSON    = flag.String("stats-json", "", "write machine-readable run statistics as JSON to this file ('-' for stdout); with -launch, one JSON array over all ranks")
		obsAddr      = flag.String("obs-addr", "", "serve live /metrics (Prometheus) and /debug/pprof on this address while the run is in flight; with -launch the supervisor serves a job-wide aggregate here")
		metricsOut   = flag.String("metrics-out", "", "write this rank's final Prometheus wire-metrics snapshot to this file; with -launch, one aggregated snapshot over all ranks")
		checkTrace   = flag.String("check-trace", "", "verify a merged trace file's invariants and critical-path bound against -problem, then exit")
		traceLenient = flag.Bool("trace-lenient", false, "verify traces with the lenient flow-pairing rules (required for runs that restarted a rank)")
	)
	flag.Parse()

	if *checkTrace != "" {
		os.Exit(checkTraceMain(*checkTrace, *name, *traceLenient))
	}

	if *launch > 0 {
		if !*distrib {
			fatal(fmt.Errorf("-launch requires -distributed"))
		}
		os.Exit(launchLocal(launchConfig{
			n:           *launch,
			maxRestarts: *maxRestarts,
			ckptDir:     *ckptDir,
			killRank:    *killRank,
			crashTiles:  *crashTiles,
			elastic:     *elastic,
			elasticN:    *elasticInitial,
			leaveRank:   *leaveRank,
			leaveAfter:  *elasticLeave,
			scaleAt:     *scaleAtStr,
			leavesWant:  *expectLeaves,
			traceOut:    *traceOut,
			statsJSON:   *statsJSON,
			report:      *report,
			obsAddr:     *obsAddr,
			metricsOut:  *metricsOut,
			lenient:     *traceLenient,
			problem:     *name,
		}))
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	p, err := problems.Get(*name)
	if err != nil {
		fatal(err)
	}
	params := p.DefaultParams
	if *paramStr != "" {
		params = nil
		for _, f := range strings.Split(*paramStr, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad -params entry %q: %v", f, err))
			}
			params = append(params, v)
		}
	}
	cfg := dpgen.Config{
		Nodes: *nodes, Threads: *threads,
		SendBufs: *sendBufs, RecvBufs: *recvBufs,
		QueueGroups: *groups,
		PollingRecv: *polling,
		Checkpoint: dpgen.CheckpointConfig{
			Dir:        *ckptDir,
			EveryTiles: *ckptEvery,
			Resume:     *resume || *rejoin,
		},
	}
	if *elastic {
		members, err := parseMembers(*elasticMembers)
		if err != nil {
			fatal(err)
		}
		schedule, err := parseScaleAt(*scaleAtStr)
		if err != nil {
			fatal(err)
		}
		cfg.Elastic = dpgen.ElasticConfig{
			Enabled:         true,
			Members:         members,
			JoinRequest:     *elasticJoin,
			LeaveAfterTiles: *elasticLeave,
			ExpectLeaves:    *expectLeaves,
		}
		if *rank == 0 {
			cfg.Elastic.ScaleAt = schedule
		}
	}
	if *crashTiles > 0 {
		cfg.CrashAfterTiles = *crashTiles
		cfg.CrashFn = func() {
			fmt.Fprintf(os.Stderr, "injected crash after %d tiles\n", *crashTiles)
			os.Exit(3)
		}
	}
	var tracer *dpgen.Tracer
	if *traceOut != "" || *metrics || *report {
		tracer = dpgen.NewTracer()
		cfg.Tracer = tracer
	}
	if *distrib {
		peers := strings.Split(*peersStr, ",")
		if *peersStr == "" || *rank < 0 || *rank >= len(peers) {
			fatal(fmt.Errorf("-distributed needs -rank in [0,%d) and a -peers address per rank (or -launch N)", len(peers)))
		}
		ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stopSig()
		opts := dpgen.TCPOptions{
			SendBufs:        *sendBufs,
			RecvBufs:        *recvBufs,
			Recovery:        *ckptDir != "",
			Context:         ctx,
			HeartbeatEvery:  *heartbeat,
			PeerDownTimeout: *peerDownTO,
		}
		if tracer != nil {
			opts.Observer = recoveryObserver(tracer, *rank, *threads)
		}
		var tr dpgen.Transport
		if *rejoin {
			tr, err = dpgen.DialTCPRejoin(*rank, peers, opts)
		} else {
			tr, err = dpgen.DialTCP(*rank, peers, opts)
		}
		if err != nil {
			fatal(err)
		}
		cfg.Transport = tr
	}
	switch *priority {
	case "column":
		cfg.Priority = dpgen.ColumnMajor
	case "levelset":
		cfg.Priority = dpgen.LevelSet
	case "fifo":
		cfg.Priority = dpgen.FIFO
	default:
		fatal(fmt.Errorf("unknown -priority %q", *priority))
	}
	switch *balOpt {
	case "prefix":
		cfg.Balance = dpgen.Prefix
	case "hyperplane":
		cfg.Balance = dpgen.Hyperplane
	default:
		fatal(fmt.Errorf("unknown -balance %q", *balOpt))
	}
	switch *sched {
	case "hybrid":
		cfg.Sched = dpgen.SchedHybrid
	case "dynamic":
		cfg.Sched = dpgen.SchedDynamic
	default:
		fatal(fmt.Errorf("unknown -sched %q", *sched))
	}

	if *obsAddr != "" {
		srv, err := dpgen.ServeObs(*obsAddr, liveMetrics(cfg.Transport))
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		// The -launch supervisor parses this line to discover the port.
		fmt.Printf("obs       http://%s (live /metrics and /debug/pprof)\n", srv.Addr())
	}

	tl, err := dpgen.Analyze(p.Spec)
	if err != nil {
		fatal(err)
	}
	res, err := dpgen.RunAnalyzed(tl, p.Kernel, params, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("problem   %s\n", p.Spec.Name)
	if *distrib {
		fmt.Printf("rank      %d of %d (distributed over TCP)\n", *rank, len(res.Stats))
	}
	fmt.Printf("params    %v\n", params)
	fmt.Printf("value     %.17g\n", res.Value)
	fmt.Printf("max       %.17g\n", res.Max)
	fmt.Printf("init      %s\n", res.InitTime)
	fmt.Printf("total     %s\n", res.TotalTime)
	fmt.Printf("messages  %d (%d elements)\n", res.Messages, res.Elems)
	if *stats {
		for i, st := range res.Stats {
			if *distrib && i != *rank {
				continue // remote ranks report their own stats
			}
			fmt.Printf("node %d: tiles %d cells %d sent %d recv %d local %d peak_edges %d peak_elems %d idle %s send_stall %s\n",
				i, st.TilesExecuted, st.CellsComputed, st.EdgesSentRemote, st.EdgesRecvRemote,
				st.EdgesLocal, st.PeakPendingEdges, st.PeakBufferedElems, st.IdleTime, st.SendStallTime)
			fmt.Printf("node %d: sched static_tiles %d steals %d local_pops %d queue_peak %d\n",
				i, st.StaticTiles, st.Steals, st.LocalPops, st.QueueDepthPeak)
			if *ckptDir != "" {
				fmt.Printf("node %d: ckpts %d ckpt_bytes %d dup_dropped %d hb_misses %d peer_restarts %d\n",
					i, st.Checkpoints, st.CheckpointBytes, st.EdgesDroppedDup,
					st.HeartbeatMisses, st.PeerRestarts)
			}
			if *elastic {
				fmt.Printf("node %d: epochs %d migrated_out %d (%d edges) migrated_in %d (%d edges) forwarded %d\n",
					i, st.Epochs, st.TilesMigratedOut, st.EdgesMigratedOut,
					st.TilesMigratedIn, st.EdgesMigratedIn, st.EdgesForwarded)
			}
			if st.WireBytesSent != 0 || st.WireBytesRecv != 0 {
				fmt.Printf("node %d: wire_sent %d wire_recv %d\n", i, st.WireBytesSent, st.WireBytesRecv)
			}
		}
	}
	if *statsJSON != "" {
		if err := writeStatsJSON(*statsJSON, p.Spec.Name, params, *rank, *distrib, res, cfg.Transport); err != nil {
			fatal(err)
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatal(err)
		}
		if err := liveMetrics(cfg.Transport)(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if tracer != nil {
		snap := tracer.Snapshot()
		if *distrib {
			snap.Meta = traceMeta(tracer, *rank, len(res.Stats), cfg.Transport)
		}
		rep, err := dpgen.CriticalPath(tl, snap)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("critpath  %s\n", rep)
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			if err := snap.WriteChrome(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("trace     %s (%d events, %d lanes)\n", *traceOut, len(snap.Events), len(snap.Lanes))
		}
		if *report {
			rr, err := dpgen.BuildRunReport(tl, snap, 0)
			if err != nil {
				fatal(err)
			}
			if err := rr.WriteText(os.Stdout); err != nil {
				fatal(err)
			}
		}
		if *metrics {
			if err := snap.Metrics().WritePrometheus(os.Stdout); err != nil {
				fatal(err)
			}
		}
	}
	if *check {
		start := time.Now()
		want := p.Serial(params)
		got := res.Value
		if p.UseMax {
			got = res.Max
		}
		fmt.Printf("serial    %.17g (%s)\n", want, time.Since(start))
		if want != got {
			fatal(fmt.Errorf("MISMATCH: hybrid %v != serial %v", got, want))
		}
		fmt.Println("check     OK (bit-identical)")
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // settle allocations so the profile shows retained heap
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

// recoveryObserver bridges the transport's recovery callbacks (which
// fire from heartbeat and reader goroutines) onto a dedicated
// single-writer "recovery" trace lane, serialized by a mutex. The lane
// index sits above the engine's worker/recv/init/ckpt lanes.
func recoveryObserver(tracer *dpgen.Tracer, rank, threads int) func(event string, peer int, val int64) {
	lane := tracer.Lane(rank, threads+3, "recovery")
	var mu sync.Mutex
	return func(event string, peer int, val int64) {
		var k obs.Kind
		switch event {
		case dpgen.ObsPeerDown:
			k = obs.KPeerDown
		case dpgen.ObsPark:
			k = obs.KPark
		case dpgen.ObsRejoin:
			k = obs.KRejoin
		case dpgen.ObsReplay:
			k = obs.KReplay
		default:
			return
		}
		mu.Lock()
		lane.Instant(k, "peer"+strconv.Itoa(peer), int32(peer), val)
		mu.Unlock()
	}
}

// traceMeta builds the clock-alignment metadata stamped into a
// distributed rank's trace file; MergeTraces aligns on it.
func traceMeta(tracer *dpgen.Tracer, rank, ranks int, tr dpgen.Transport) *dpgen.TraceMeta {
	meta := &dpgen.TraceMeta{
		Rank:         rank,
		Ranks:        ranks,
		OriginUnixNs: tracer.Origin().UnixNano(),
	}
	if ns, ok := dpgen.TransportNetStats(tr); ok {
		meta.ClockOffsetNs = ns.ClockOffsetNs
		meta.ClockRTTNs = ns.ClockRTTNs
	}
	return meta
}

// liveMetrics is the /metrics body of a single rank: the transport's
// wire-level counters and edge-latency histogram, all atomic-backed and
// safe to read mid-run. Non-distributed runs have no live source.
func liveMetrics(tr dpgen.Transport) func(w io.Writer) error {
	return func(w io.Writer) error {
		if tr != nil {
			if ns, ok := dpgen.TransportNetStats(tr); ok {
				return ns.WritePrometheus(w)
			}
		}
		_, err := fmt.Fprintln(w, "# dprun: no live metrics source (not a distributed TCP run)")
		return err
	}
}

// parseMembers parses the -elastic-members rank list; empty means every
// rank (the engine's default).
func parseMembers(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var members []int
	for _, f := range strings.Split(s, ",") {
		r, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad -elastic-members entry %q: %v", f, err)
		}
		members = append(members, r)
	}
	return members, nil
}

// parseScaleAt parses the -scale-at schedule: comma-separated
// tiles:delta pairs, e.g. "100:+2,500:-1" grows the member set by two
// ranks once rank 0 has executed 100 tiles and shrinks it by one at 500.
func parseScaleAt(s string) ([]dpgen.ScaleEvent, error) {
	if s == "" {
		return nil, nil
	}
	var evs []dpgen.ScaleEvent
	for _, f := range strings.Split(s, ",") {
		tiles, delta, ok := strings.Cut(strings.TrimSpace(f), ":")
		if !ok {
			return nil, fmt.Errorf("bad -scale-at entry %q: want tiles:delta", f)
		}
		at, err := strconv.ParseInt(tiles, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -scale-at tile count %q: %v", tiles, err)
		}
		d, err := strconv.Atoi(delta)
		if err != nil || d == 0 {
			return nil, fmt.Errorf("bad -scale-at delta %q: want a non-zero signed rank count", delta)
		}
		evs = append(evs, dpgen.ScaleEvent{AfterTiles: at, Delta: d})
	}
	return evs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
