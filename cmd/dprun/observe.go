// Post-run observability plumbing for the -launch supervisor and the
// standalone -check-trace mode: merging per-rank traces into one
// clock-aligned Perfetto file, rolling per-rank stats JSON into one
// array, scraping and aggregating the children's live /metrics
// endpoints, and verifying merged-trace invariants.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"dpgen"
	"dpgen/internal/problems"
)

// postRun performs the supervisor's after-the-job observability work:
// trace merge + verification, the run-wide report, the stats-JSON
// rollup and the final metrics snapshot. Returns a process exit code.
func postRun(lc launchConfig, statsBase string, restarted bool) int {
	var merged *dpgen.Trace
	if lc.traceOut != "" {
		var err error
		merged, err = mergeRankTraces(lc.traceOut, lc.n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "supervisor: trace merge failed: %v\n", err)
			return 1
		}
		// A restarted rank legitimately orphans the sends of its dead
		// incarnation and re-receives replayed frames, so exact flow
		// pairing only holds for clean runs.
		strict := !lc.lenient && !restarted
		if viol := dpgen.VerifyMergedTrace(merged, strict); len(viol) > 0 {
			for _, v := range viol {
				fmt.Fprintf(os.Stderr, "supervisor: merged trace invariant violated: %s\n", v)
			}
			return 1
		}
		fmt.Printf("trace     %s (merged, %d ranks, %d events, %d flows)\n",
			lc.traceOut, lc.n, len(merged.Events), len(merged.Flows))
	}
	if lc.report {
		if merged == nil {
			fmt.Fprintln(os.Stderr, "supervisor: -report needs -trace to collect the per-rank timelines")
			return 1
		}
		rr, err := buildReport(lc.problem, merged)
		if err != nil {
			fmt.Fprintf(os.Stderr, "supervisor: report failed: %v\n", err)
			return 1
		}
		if err := rr.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if lc.statsJSON != "" {
		if err := rollupStats(lc.statsJSON, statsBase, lc.n); err != nil {
			fmt.Fprintf(os.Stderr, "supervisor: stats rollup failed: %v\n", err)
			return 1
		}
	}
	if lc.metricsOut != "" {
		if err := rollupMetrics(lc.metricsOut, lc.n); err != nil {
			fmt.Fprintf(os.Stderr, "supervisor: metrics rollup failed: %v\n", err)
			return 1
		}
		fmt.Printf("metrics   %s (aggregated over %d ranks)\n", lc.metricsOut, lc.n)
	}
	return 0
}

// mergeRankTraces parses every <out>.rank<r> file, merges them onto
// rank 0's timeline and writes the single Perfetto file to out. The
// per-rank files are removed on success.
func mergeRankTraces(out string, n int) (*dpgen.Trace, error) {
	traces := make([]*dpgen.Trace, 0, n)
	for r := 0; r < n; r++ {
		path := rankFile(out, r)
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("rank %d wrote no trace: %w", r, err)
		}
		tr, err := dpgen.ParseTrace(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		traces = append(traces, tr)
	}
	merged, err := dpgen.MergeTraces(traces)
	if err != nil {
		return nil, err
	}
	f, err := os.Create(out)
	if err != nil {
		return nil, err
	}
	if err := merged.WriteChrome(f); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	for r := 0; r < n; r++ {
		os.Remove(rankFile(out, r))
	}
	return merged, nil
}

// buildReport resolves the problem's dependence shape and computes the
// run-wide report over a merged trace.
func buildReport(problem string, merged *dpgen.Trace) (*dpgen.RunReport, error) {
	p, err := problems.Get(problem)
	if err != nil {
		return nil, err
	}
	tl, err := dpgen.Analyze(p.Spec)
	if err != nil {
		return nil, err
	}
	return dpgen.BuildRunReport(tl, merged, 0)
}

// rollupStats combines the children's per-rank stats files into one
// JSON array at out ("-" writes to stdout) and removes the rank files.
func rollupStats(out, base string, n int) error {
	docs := make([]json.RawMessage, 0, n)
	for r := 0; r < n; r++ {
		path := rankFile(base, r)
		b, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("rank %d wrote no stats: %w", r, err)
		}
		if !json.Valid(b) {
			return fmt.Errorf("rank %d stats file %s is not valid JSON", r, path)
		}
		docs = append(docs, json.RawMessage(b))
	}
	enc, err := json.MarshalIndent(docs, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(enc)
	} else {
		err = os.WriteFile(out, enc, 0o644)
	}
	if err != nil {
		return err
	}
	for r := 0; r < n; r++ {
		os.Remove(rankFile(base, r))
	}
	return nil
}

// statsDoc is the schema of -stats-json: the run identity, result
// timings and the per-node statistics (NodeStats carries the recovery
// and wire counters), plus the transport's wire-level snapshot for
// distributed ranks.
type statsDoc struct {
	Problem      string             `json:"problem"`
	Params       []int64            `json:"params"`
	Rank         int                `json:"rank"`
	Ranks        int                `json:"ranks"`
	Value        float64            `json:"value"`
	Max          float64            `json:"max"`
	InitSeconds  float64            `json:"init_seconds"`
	TotalSeconds float64            `json:"total_seconds"`
	Messages     int64              `json:"messages"`
	Elems        int64              `json:"elems"`
	Nodes        []dpgen.NodeStats  `json:"nodes"`
	Net          *dpgen.TCPNetStats `json:"net,omitempty"`
}

// writeStatsJSON writes one rank's (or a simulated run's) statistics
// document to path; "-" writes to stdout.
func writeStatsJSON(path, problem string, params []int64, rank int, distrib bool, res *dpgen.Result, tr dpgen.Transport) error {
	doc := statsDoc{
		Problem:      problem,
		Params:       params,
		Ranks:        len(res.Stats),
		Value:        res.Value,
		Max:          res.Max,
		InitSeconds:  res.InitTime.Seconds(),
		TotalSeconds: res.TotalTime.Seconds(),
		Messages:     res.Messages,
		Elems:        res.Elems,
	}
	if distrib {
		// Remote ranks report their own stats; only the local entry is
		// populated here.
		doc.Rank = rank
		doc.Nodes = []dpgen.NodeStats{res.Stats[rank]}
		if ns, ok := dpgen.TransportNetStats(tr); ok {
			doc.Net = &ns
		}
	} else {
		doc.Rank = -1
		doc.Nodes = res.Stats
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(path, enc, 0o644)
}

// checkTraceMain is the -check-trace entry point: parse a merged trace
// file, verify its invariants (strict flow pairing unless lenient) and
// check the cross-rank critical path does not exceed the merged
// makespan. Returns a process exit code.
func checkTraceMain(path, problem string, lenient bool) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	tr, err := dpgen.ParseTrace(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "check-trace: parsing %s: %v\n", path, err)
		return 1
	}
	if viol := dpgen.VerifyMergedTrace(tr, !lenient); len(viol) > 0 {
		for _, v := range viol {
			fmt.Fprintf(os.Stderr, "check-trace: invariant violated: %s\n", v)
		}
		return 1
	}
	rr, err := buildReport(problem, tr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "check-trace: %v\n", err)
		return 1
	}
	if cp := rr.CritPath; cp != nil && cp.CriticalPath > cp.Makespan {
		fmt.Fprintf(os.Stderr, "check-trace: critical path %s exceeds makespan %s\n",
			cp.CriticalPath, cp.Makespan)
		return 1
	}
	fmt.Printf("check-trace OK: %s (%d ranks, %d events, %d flows)\n",
		path, trRanks(tr), len(tr.Events), len(tr.Flows))
	return 0
}

// trRanks reports the rank count recorded in a trace's metadata.
func trRanks(tr *dpgen.Trace) int {
	if tr.Meta != nil {
		return tr.Meta.Ranks
	}
	return 1
}

// rollupMetrics aggregates the children's final per-rank Prometheus
// snapshot files into one exposition at out and removes the rank
// files. Children self-label every sample with their rank, so
// aggregation is concatenation with HELP/TYPE deduplication.
func rollupMetrics(out string, n int) error {
	bodies := make(map[int]string, n)
	for r := 0; r < n; r++ {
		b, err := os.ReadFile(rankFile(out, r))
		if err != nil {
			return fmt.Errorf("rank %d wrote no metrics snapshot: %w", r, err)
		}
		bodies[r] = string(b)
	}
	if err := os.WriteFile(out, []byte(renderBodies(bodies)), 0o644); err != nil {
		return err
	}
	for r := 0; r < n; r++ {
		os.Remove(rankFile(out, r))
	}
	return nil
}

// metricsScraper scrapes the children's live /metrics endpoints on
// demand and renders the job-wide aggregate — the body of the
// supervisor's own /metrics endpoint. The most recent successful
// scrape per rank is retained so a rank mid-restart keeps its last
// known state in the aggregate.
type metricsScraper struct {
	addrs  func() map[int]string // current child endpoints, by rank
	client *http.Client

	mu   sync.Mutex
	last map[int]string // rank -> most recent scraped body
}

func newMetricsScraper(addrs func() map[int]string) *metricsScraper {
	return &metricsScraper{
		addrs:  addrs,
		client: &http.Client{Timeout: 2 * time.Second},
		last:   make(map[int]string),
	}
}

// scrape fetches every currently-known child endpoint and retains the
// bodies of the successful fetches.
func (m *metricsScraper) scrape() {
	for r, addr := range m.addrs() {
		body, err := m.fetch(addr)
		if err != nil {
			continue // child mid-exit or mid-restart; keep the last snapshot
		}
		m.mu.Lock()
		m.last[r] = body
		m.mu.Unlock()
	}
}

func (m *metricsScraper) fetch(addr string) (string, error) {
	resp, err := m.client.Get("http://" + addr + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %s", resp.Status)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	return string(b), err
}

// aggregate scrapes all live children on demand and writes the deduped
// job-wide exposition — the body of the supervisor's /metrics.
func (m *metricsScraper) aggregate(w io.Writer) error {
	m.scrape()
	m.mu.Lock()
	bodies := make(map[int]string, len(m.last))
	for r, b := range m.last {
		bodies[r] = b
	}
	m.mu.Unlock()
	_, err := io.WriteString(w, renderBodies(bodies))
	return err
}

// renderBodies concatenates per-rank exposition bodies in rank order,
// keeping only the first HELP and TYPE line of each metric family.
func renderBodies(bodies map[int]string) string {
	ranks := make([]int, 0, len(bodies))
	for r := range bodies {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	var sb strings.Builder
	seen := make(map[string]bool)
	for _, r := range ranks {
		for _, line := range strings.Split(bodies[r], "\n") {
			if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
				if seen[line] {
					continue
				}
				seen[line] = true
			} else if line == "" {
				continue
			}
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
