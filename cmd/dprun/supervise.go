// The -launch supervisor: forks one worker process per rank, streams
// and prefixes their output, restarts crashed ranks when the job is
// fault tolerant, and runs the job-wide observability plane — per-rank
// trace collection and merging, live metrics aggregation, and the
// machine-readable stats rollup (docs/OBSERVABILITY.md).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"dpgen"
)

// launchConfig carries the supervisor-relevant flag values into
// launchLocal.
type launchConfig struct {
	n           int    // ranks to fork
	maxRestarts int    // per-rank restart budget
	ckptDir     string // non-empty enables recovery restarts
	killRank    int    // fault injection target rank (-1 none)
	crashTiles  int64  // fault injection tile budget

	elastic    bool   // elastic membership (docs/ELASTICITY.md)
	elasticN   int    // initial member count (0: every rank is a member)
	leaveRank  int    // rank scheduled for a voluntary leave (-1 none)
	leaveAfter int64  // leave threshold in executed tiles, for leaveRank
	scaleAt    string // rank-0 scale schedule, tiles:delta pairs
	leavesWant int    // -expect-leaves override (0: derived from leaveRank)

	traceOut   string // merged Perfetto trace output path
	statsJSON  string // merged stats JSON output path ("-" stdout)
	report     bool   // print the run-wide report after the merge
	obsAddr    string // serve the live job-wide /metrics aggregate here
	metricsOut string // write the final scraped aggregate here
	lenient    bool   // lenient merged-trace verification
	problem    string // -problem value, for the report's dependence shape
}

// wantObs reports whether the supervisor needs children to open live
// observability endpoints for it to scrape.
func (lc launchConfig) wantObs() bool { return lc.obsAddr != "" }

// childExit is one supervised worker process's termination report.
type childExit struct {
	rank int
	err  error    // nil on clean exit
	code int      // process exit code (-1 when unknown)
	tail []string // last output lines, for the failure diagnostic
}

// tailLines is how many trailing output lines the supervisor keeps per
// child for its failure diagnostic.
const tailLines = 12

// obsLinePrefix starts the line a child prints to announce its live
// observability endpoint; the supervisor parses the bound address out
// of it to know where to scrape.
const obsLinePrefix = "obs       http://"

// launchLocal is the local launcher and supervisor behind -launch N: it
// picks N loopback ports, re-executes this binary once per rank with
// -distributed -rank r -peers ..., forwarding the other explicitly-set
// flags (except per-process outputs like -trace and the profiles, whose
// filenames would collide), and prefixes each child's output with its
// rank. With -kill-rank it forwards the -crash-after-tiles fault
// injection to that rank only.
//
// When a child dies and checkpointing is on (-ckpt-dir), the supervisor
// restarts the crashed rank with -resume -rejoin — the rank reloads its
// checkpoint and the surviving peers replay their retained sends — up
// to maxRestarts times per rank. Rank 0 coordinates the result merge
// and is not restartable. On a terminal failure the remaining children
// are killed and the first failed child's exit status and output tail
// are propagated.
//
// Observability: with -trace each rank writes <file>.rank<r> and the
// supervisor merges them into one clock-aligned Perfetto file after a
// clean run; -stats-json is rolled up the same way into one JSON array;
// -obs-addr / -metrics-out make every child serve live endpoints on an
// ephemeral loopback port, which the supervisor scrapes and aggregates.
func launchLocal(lc launchConfig) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	peers := make([]string, lc.n)
	for r := range peers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		peers[r] = ln.Addr().String()
		// Freed here and re-bound by the child; the dial retry in the
		// transport rides out the window.
		ln.Close()
	}
	var common []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "launch", "distributed", "rank", "peers", "nodes",
			"trace", "metrics", "cpuprofile", "memprofile",
			"kill-rank", "max-restarts", "crash-after-tiles",
			"resume", "rejoin",
			"elastic-members", "elastic-join", "elastic-leave-after",
			"scale-at", "expect-leaves", "elastic-initial", "leave-rank",
			"report", "stats-json", "obs-addr", "metrics-out",
			"check-trace", "trace-lenient":
			return
		}
		common = append(common, "-"+f.Name+"="+f.Value.String())
	})

	statsBase := lc.statsJSON
	if statsBase == "-" {
		// Children need real files; the rollup goes to stdout at the end.
		statsBase = filepath.Join(os.TempDir(), fmt.Sprintf("dprun-stats-%d.json", os.Getpid()))
	}
	// perRank is the per-child output plumbing re-applied on restarts:
	// rank-suffixed trace and stats files, and an ephemeral live
	// observability port when the supervisor wants to scrape.
	perRank := func(r int) []string {
		var extra []string
		if lc.traceOut != "" {
			extra = append(extra, "-trace="+rankFile(lc.traceOut, r))
		}
		if lc.statsJSON != "" {
			extra = append(extra, "-stats-json="+rankFile(statsBase, r))
		}
		if lc.metricsOut != "" {
			extra = append(extra, "-metrics-out="+rankFile(lc.metricsOut, r))
		}
		if lc.wantObs() {
			extra = append(extra, "-obs-addr=127.0.0.1:0")
		}
		if lc.elastic {
			extra = append(extra, lc.elasticFlags(r)...)
		}
		return extra
	}

	var mu sync.Mutex // serializes output lines and the process table
	procs := make(map[int]*exec.Cmd, lc.n)
	obsAddrs := make(map[int]string, lc.n) // rank -> live endpoint address
	exits := make(chan childExit, lc.n)

	// start launches (or relaunches) rank r and begins streaming its
	// output; extra carries the restart or fault-injection flags.
	start := func(r int, extra ...string) error {
		args := append([]string{
			"-distributed",
			"-rank", strconv.Itoa(r),
			"-peers", strings.Join(peers, ","),
		}, common...)
		args = append(args, perRank(r)...)
		args = append(args, extra...)
		cmd := exec.Command(exe, args...)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		cmd.Stderr = cmd.Stdout // one prefixed stream per child
		if err := cmd.Start(); err != nil {
			return err
		}
		mu.Lock()
		procs[r] = cmd
		mu.Unlock()
		go func() {
			var tail []string
			sc := bufio.NewScanner(stdout)
			sc.Buffer(make([]byte, 64*1024), 1024*1024)
			for sc.Scan() {
				line := sc.Text()
				if a, ok := strings.CutPrefix(line, obsLinePrefix); ok {
					if i := strings.IndexByte(a, ' '); i > 0 {
						mu.Lock()
						obsAddrs[r] = a[:i]
						mu.Unlock()
					}
				}
				mu.Lock()
				fmt.Printf("[rank %d] %s\n", r, line)
				mu.Unlock()
				tail = append(tail, line)
				if len(tail) > tailLines {
					tail = tail[1:]
				}
			}
			ex := childExit{rank: r, err: cmd.Wait(), code: -1, tail: tail}
			if st := cmd.ProcessState; st != nil {
				ex.code = st.ExitCode()
			}
			exits <- ex
		}()
		return nil
	}

	for r := 0; r < lc.n; r++ {
		var extra []string
		if r == lc.killRank && lc.crashTiles > 0 {
			extra = []string{"-crash-after-tiles", strconv.FormatInt(lc.crashTiles, 10)}
		}
		if err := start(r, extra...); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	// snapshotAddrs hands the scraper a race-free copy of the current
	// child endpoints.
	snapshotAddrs := func() map[int]string {
		mu.Lock()
		defer mu.Unlock()
		cp := make(map[int]string, len(obsAddrs))
		for r, a := range obsAddrs {
			cp[r] = a
		}
		return cp
	}
	if lc.wantObs() {
		scraper := newMetricsScraper(snapshotAddrs)
		srv, err := dpgen.ServeObs(lc.obsAddr, scraper.aggregate)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer srv.Close()
		fmt.Printf("supervisor: serving aggregated /metrics on http://%s\n", srv.Addr())
	}

	restarts := make(map[int]int, lc.n)
	running := lc.n
	ret := 0
	for running > 0 {
		ex := <-exits
		if ex.err == nil {
			running--
			continue
		}
		if ret != 0 {
			// Already failing: just reap the remaining children.
			running--
			continue
		}
		recoverable := lc.ckptDir != "" && ex.rank != 0 && restarts[ex.rank] < lc.maxRestarts
		if recoverable {
			restarts[ex.rank]++
			fmt.Fprintf(os.Stderr, "supervisor: rank %d exited (%v); restart %d/%d with -resume -rejoin\n",
				ex.rank, ex.err, restarts[ex.rank], lc.maxRestarts)
			mu.Lock()
			delete(obsAddrs, ex.rank) // stale port; the restart announces a new one
			mu.Unlock()
			if err := start(ex.rank, "-resume", "-rejoin"); err == nil {
				continue
			} else {
				fmt.Fprintf(os.Stderr, "supervisor: restart of rank %d failed: %v\n", ex.rank, err)
			}
		}
		// Terminal: report the failure, propagate the child's status and
		// take the rest of the mesh down rather than letting it hang out
		// its peer-down timeout.
		running--
		ret = ex.code
		if ret <= 0 {
			ret = 1
		}
		fmt.Fprintf(os.Stderr, "supervisor: rank %d failed (%v, exit code %d) after %d restarts\n",
			ex.rank, ex.err, ex.code, restarts[ex.rank])
		for _, line := range ex.tail {
			fmt.Fprintf(os.Stderr, "supervisor: [rank %d] %s\n", ex.rank, line)
		}
		mu.Lock()
		for r, cmd := range procs {
			if r != ex.rank && cmd.Process != nil {
				cmd.Process.Kill() // no-op error if it already exited
			}
		}
		mu.Unlock()
	}
	if ret == 0 {
		for r, k := range restarts {
			fmt.Printf("supervisor: rank %d recovered after %d restart(s)\n", r, k)
		}
		ret = postRun(lc, statsBase, len(restarts) > 0)
	}
	return ret
}

// elasticFlags computes rank r's membership role in an -elastic job:
// ranks below the initial member count (-elastic-initial, default all)
// start as members, the rest start as standbys announcing a join; rank
// -leave-rank is scheduled for a voluntary departure; rank 0 carries
// the -scale-at schedule and waits for the scheduled leave before
// declaring the membership final.
func (lc launchConfig) elasticFlags(r int) []string {
	init := lc.elasticN
	if init <= 0 || init > lc.n {
		init = lc.n
	}
	ranks := make([]string, init)
	for i := range ranks {
		ranks[i] = strconv.Itoa(i)
	}
	flags := []string{"-elastic-members=" + strings.Join(ranks, ",")}
	if r >= init {
		flags = append(flags, "-elastic-join")
	}
	if r == lc.leaveRank && lc.leaveAfter > 0 {
		flags = append(flags, "-elastic-leave-after="+strconv.FormatInt(lc.leaveAfter, 10))
	}
	if r == 0 {
		if lc.scaleAt != "" {
			flags = append(flags, "-scale-at="+lc.scaleAt)
		}
		want := lc.leavesWant
		if want == 0 && lc.leaveRank >= 0 && lc.leaveAfter > 0 {
			want = 1
		}
		if want > 0 {
			flags = append(flags, "-expect-leaves="+strconv.Itoa(want))
		}
	}
	return flags
}

// rankFile is the per-rank variant of a job-wide output path.
func rankFile(path string, rank int) string {
	return fmt.Sprintf("%s.rank%d", path, rank)
}
