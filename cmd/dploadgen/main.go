// Command dploadgen is the closed-loop load driver for dpserve: N
// concurrent clients issue a mixed stream of /v1/query requests
// (builtin problems and spec-text variants, spread over tenants and
// parameter values), and the tool reports throughput, p50/p95/p99
// latency, and the cache/coalescing/shedding behaviour per concurrency
// level. With -bench-json it writes a machine-readable snapshot
// (schema dpgen-bench-serve/v1, committed as BENCH_serve.json).
//
// Usage:
//
//	dpserve -addr :8080 &
//	dploadgen -addr http://localhost:8080 -clients 4,16 -duration 10s
//
// Exit-code gates for CI smoke tests:
//
//	-require-cache-hits   fail unless the run saw cached or coalesced
//	                      responses (the caches demonstrably worked)
//	-max-5xx N            fail if more than N responses were 5xx
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dpgen/internal/problems"
	"dpgen/internal/serve"
)

// triSpec is the spec-text half of the mix: a triangular 2-D space
// whose parameter is varied per request to control result-memo hit
// rates. All spellings of it hash to one compiled program server-side.
const triSpec = `name loadtri
params N
vars i j
constraint 0 <= i <= N
constraint 0 <= j <= i
dep left -1 0
dep down 0 -1
tile 8 8
`

type sample struct {
	ns        int64
	status    int
	cached    bool
	coalesced bool
	// retryAfter is the server's Retry-After backoff on a 429/503
	// response (zero when absent); the closed loop honours it before
	// its next request instead of hammering a shedding server.
	retryAfter time.Duration
}

// maxRetryAfter caps the honoured Retry-After backoff so a
// misconfigured or adversarial server cannot park a client for the
// rest of the run.
const maxRetryAfter = 2 * time.Second

// levelRow is one concurrency level's aggregate, the unit of the
// BENCH_serve.json snapshot.
type levelRow struct {
	Clients   int     `json:"clients"`
	DurationS float64 `json:"duration_s"`
	Requests  int     `json:"requests"`
	OK        int     `json:"ok"`
	Cached    int     `json:"cached"`
	Coalesced int     `json:"coalesced"`
	Shed      int     `json:"shed"`
	Err4xx    int     `json:"err_4xx"`
	Err5xx    int     `json:"err_5xx"`
	QPS       float64 `json:"qps"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MeanMs    float64 `json:"mean_ms"`
}

type benchSnapshot struct {
	Schema string     `json:"schema"`
	Go     string     `json:"go"`
	GOOS   string     `json:"goos"`
	GOARCH string     `json:"goarch"`
	CPUs   int        `json:"cpus"`
	Mix    string     `json:"mix"`
	Levels []levelRow `json:"levels"`
}

func main() {
	var (
		addr      = flag.String("addr", "http://localhost:8080", "dpserve base URL")
		clients   = flag.String("clients", "4,16", "comma-separated concurrency levels, run in order")
		duration  = flag.Duration("duration", 10*time.Second, "wall time per level")
		probList  = flag.String("problems", "editdist,lcs2,bandit2", "builtin problems in the mix (empty: spec-only)")
		spread    = flag.Int("param-spread", 4, "distinct parameter variants per problem (1: maximal memo hits)")
		tenants   = flag.Int("tenants", 2, "distinct tenants to spread requests over")
		nodes     = flag.Int("nodes", 1, "nodes per query")
		threads   = flag.Int("threads", 1, "threads per query")
		sched     = flag.String("sched", "hybrid", "tile scheduler per query")
		seed      = flag.Int64("seed", 1, "mix RNG seed")
		noMemo    = flag.Bool("no-result-cache", false, "set noResultCache on every query (forces a run per non-coalesced request; used to provoke shedding)")
		benchJSON = flag.String("bench-json", "", "write a dpgen-bench-serve/v1 snapshot to this file")
		wantHits  = flag.Bool("require-cache-hits", false, "exit 1 unless cached or coalesced responses occurred")
		max5xx    = flag.Int("max-5xx", -1, "exit 1 if 5xx responses exceed this (-1: no gate)")
	)
	flag.Parse()

	reqs, err := buildMix(*probList, *spread, *nodes, *threads, *sched, *noMemo)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var levels []int
	for _, f := range strings.Split(*clients, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "dploadgen: bad -clients element %q\n", f)
			os.Exit(1)
		}
		levels = append(levels, n)
	}

	snap := benchSnapshot{
		Schema: "dpgen-bench-serve/v1",
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Mix:    fmt.Sprintf("problems=%s spread=%d tenants=%d spec=loadtri", *probList, *spread, *tenants),
	}
	fmt.Printf("%-8s %9s %7s %7s %9s %5s %5s %5s %9s %9s %9s\n",
		"clients", "requests", "ok", "cached", "coalesced", "shed", "4xx", "5xx", "p50(ms)", "p95(ms)", "p99(ms)")
	total5xx, totalHits := 0, 0
	for _, n := range levels {
		row := runLevel(*addr, reqs, n, *duration, *tenants, *seed)
		snap.Levels = append(snap.Levels, row)
		total5xx += row.Err5xx
		totalHits += row.Cached + row.Coalesced
		fmt.Printf("%-8d %9d %7d %7d %9d %5d %5d %5d %9.2f %9.2f %9.2f\n",
			row.Clients, row.Requests, row.OK, row.Cached, row.Coalesced, row.Shed,
			row.Err4xx, row.Err5xx, row.P50Ms, row.P95Ms, row.P99Ms)
	}

	if *benchJSON != "" {
		data, err := json.MarshalIndent(&snap, "", "  ")
		if err == nil {
			err = os.WriteFile(*benchJSON, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dploadgen: write %s: %v\n", *benchJSON, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchJSON)
	}
	if *wantHits && totalHits == 0 {
		fmt.Fprintln(os.Stderr, "dploadgen: FAIL: no cached or coalesced responses observed")
		os.Exit(1)
	}
	if *max5xx >= 0 && total5xx > *max5xx {
		fmt.Fprintf(os.Stderr, "dploadgen: FAIL: %d 5xx responses (gate %d)\n", total5xx, *max5xx)
		os.Exit(1)
	}
}

// buildMix expands the problem list and parameter spread into the pool
// of distinct requests the clients draw from.
func buildMix(probList string, spread, nodes, threads int, sched string, noMemo bool) ([]serve.QueryRequest, error) {
	if spread < 1 {
		spread = 1
	}
	var reqs []serve.QueryRequest
	if probList != "" {
		for _, name := range strings.Split(probList, ",") {
			name = strings.TrimSpace(name)
			p, err := problems.Get(name)
			if err != nil {
				return nil, fmt.Errorf("dploadgen: %w", err)
			}
			// Builtins run at their default params only: FixedParams
			// problems bake inputs into their kernels, and the free-param
			// builtins at defaults exercise the memo's hot path. The
			// parameter spread comes from the spec-text half of the mix.
			vary := spread
			if p.FixedParams || len(p.DefaultParams) == 0 {
				vary = 1
			}
			for k := 0; k < vary; k++ {
				params := append([]int64(nil), p.DefaultParams...)
				if k > 0 {
					params[0] += int64(k)
				}
				reqs = append(reqs, serve.QueryRequest{
					Problem: name, Params: params, Nodes: nodes, Threads: threads, Sched: sched,
					NoResultCache: noMemo,
				})
			}
		}
	}
	for k := 0; k < spread; k++ {
		reqs = append(reqs, serve.QueryRequest{
			Spec: triSpec, Params: []int64{int64(48 + k)}, Nodes: nodes, Threads: threads, Sched: sched,
			NoResultCache: noMemo,
		})
	}
	return reqs, nil
}

// runLevel drives n closed-loop clients for d and aggregates.
func runLevel(addr string, reqs []serve.QueryRequest, n int, d time.Duration, tenants int, seed int64) levelRow {
	deadline := time.Now().Add(d)
	samples := make([][]sample, n)
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)*7919))
			client := &http.Client{Timeout: 2 * time.Minute}
			for time.Now().Before(deadline) {
				req := reqs[rng.Intn(len(reqs))]
				req.Tenant = fmt.Sprintf("tenant-%d", rng.Intn(tenants))
				s := issue(client, addr, &req)
				samples[c] = append(samples[c], s)
				if s.retryAfter > 0 {
					if wait := time.Until(deadline); wait < s.retryAfter {
						time.Sleep(wait)
					} else {
						time.Sleep(s.retryAfter)
					}
				}
			}
		}(c)
	}
	wg.Wait()

	row := levelRow{Clients: n, DurationS: d.Seconds()}
	var all []int64
	var sumNs int64
	for _, cs := range samples {
		for _, s := range cs {
			row.Requests++
			switch {
			case s.status == http.StatusOK:
				row.OK++
				if s.cached {
					row.Cached++
				}
				if s.coalesced {
					row.Coalesced++
				}
			case s.status == http.StatusTooManyRequests:
				row.Shed++
			case s.status >= 500:
				row.Err5xx++
			case s.status >= 400:
				row.Err4xx++
			}
			all = append(all, s.ns)
			sumNs += s.ns
		}
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		row.P50Ms = pctMs(all, 50)
		row.P95Ms = pctMs(all, 95)
		row.P99Ms = pctMs(all, 99)
		row.MeanMs = float64(sumNs) / float64(len(all)) / 1e6
		row.QPS = float64(row.Requests) / d.Seconds()
	}
	return row
}

// issue sends one query and classifies the response.
func issue(client *http.Client, addr string, req *serve.QueryRequest) sample {
	data, _ := json.Marshal(req)
	t0 := time.Now()
	resp, err := client.Post(addr+"/v1/query", "application/json", bytes.NewReader(data))
	s := sample{ns: time.Since(t0).Nanoseconds()}
	if err != nil {
		s.status = 599 // transport failure counts as a 5xx
		return s
	}
	defer resp.Body.Close()
	s.status = resp.StatusCode
	if resp.StatusCode == http.StatusOK {
		var qr serve.QueryResponse
		if json.NewDecoder(resp.Body).Decode(&qr) == nil {
			s.cached, s.coalesced = qr.Cached, qr.Coalesced
		}
	} else {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		if s.status == http.StatusTooManyRequests || s.status == http.StatusServiceUnavailable {
			s.retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
		}
	}
	return s
}

// parseRetryAfter reads a Retry-After header in either RFC 9110 form —
// delay seconds or an HTTP-date — clamped to [0, maxRetryAfter].
// Absent or malformed headers yield zero (no backoff).
func parseRetryAfter(v string) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	var d time.Duration
	if secs, err := strconv.Atoi(v); err == nil {
		d = time.Duration(secs) * time.Second
	} else if at, err := http.ParseTime(v); err == nil {
		d = time.Until(at)
	}
	if d < 0 {
		d = 0
	}
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d
}

// pctMs reads the p-th percentile (nearest-rank) of sorted ns samples
// in milliseconds.
func pctMs(sorted []int64, p int) float64 {
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return float64(sorted[idx]) / 1e6
}
