// Command dpserve runs the DP-as-a-service daemon: a multi-tenant HTTP
// server (dpgen/internal/serve) that accepts spec text or builtin
// problem names plus parameters, compiles each distinct spec once into
// a keyed program cache, coalesces identical in-flight queries into one
// engine run, memoizes results in a size-bounded LRU, and sheds load
// with 429 + Retry-After when its bounded compile/run queues fill.
//
// Endpoints: POST /v1/query, POST /v1/compile, GET /v1/catalog,
// GET /v1/stats, GET /metrics (Prometheus), GET /healthz,
// /debug/pprof/*. docs/SERVING.md is the full reference; cmd/dploadgen
// is the matching load driver.
//
// Usage:
//
//	dpserve -addr :8080
//	dpserve -addr :8080 -max-runs 4 -run-queue 32 -tenant-concurrency 2
//
// SIGINT/SIGTERM drains: new queries get 503 while in-flight requests
// finish (up to -drain), then the listener closes.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dpgen/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		maxRuns      = flag.Int("max-runs", 0, "concurrent engine runs (0: GOMAXPROCS)")
		runQueue     = flag.Int("run-queue", 64, "run-slot waiters before shedding (-1: none)")
		maxCompiles  = flag.Int("max-compiles", 2, "concurrent spec compiles")
		compileQueue = flag.Int("compile-queue", 16, "compile-slot waiters before shedding (-1: none)")
		tenantConc   = flag.Int("tenant-concurrency", 0, "per-tenant concurrent requests (0: same as -max-runs)")
		tenantQueue  = flag.Int("tenant-queue", 0, "per-tenant waiters before shedding (0: same as -run-queue)")
		specCache    = flag.Int("spec-cache", 256, "compiled-spec cache entries")
		resultCache  = flag.Int("result-cache", 4096, "result-memo entries (-1: memo off)")
		resultBytes  = flag.Int64("result-cache-bytes", 16<<20, "result-memo byte budget")
		maxNodes     = flag.Int("max-nodes", 8, "largest simulated node count a query may ask for")
		maxThreads   = flag.Int("max-threads", 0, "largest thread count a query may ask for (0: GOMAXPROCS)")
		maxBody      = flag.Int64("max-body", 1<<20, "request body byte cap")
		drain        = flag.Duration("drain", 10*time.Second, "in-flight grace period on shutdown")
	)
	flag.Parse()

	s := serve.New(serve.Options{
		MaxConcurrentRuns:     *maxRuns,
		MaxRunQueue:           *runQueue,
		MaxConcurrentCompiles: *maxCompiles,
		MaxCompileQueue:       *compileQueue,
		TenantConcurrency:     *tenantConc,
		TenantQueue:           *tenantQueue,
		SpecCacheEntries:      *specCache,
		ResultCacheEntries:    *resultCache,
		ResultCacheBytes:      *resultBytes,
		MaxNodes:              *maxNodes,
		MaxThreads:            *maxThreads,
		MaxBodyBytes:          *maxBody,
	})
	h, err := s.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("dpserve: listening on %s\n", h.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("dpserve: draining (up to %s)\n", *drain)
	s.Drain()
	time.Sleep(*drain)
	h.Close()
}
