// Command dpfuzz runs long differential-conformance soaks of the
// generator pipeline: it draws seeded random DP specs (see
// dpgen/internal/dpfuzz) and pushes each through the four oracle
// layers — FM loop bounds vs. brute enumeration, Ehrhart counts vs.
// exhaustive counting, pack/unpack index sets vs. the dependence
// definition, and bit-identical end-to-end engine runs (serial,
// threaded, fast path off, two-rank TCP).
//
// Failures are shrunk with the built-in minimizer and printed as
// compilable Go literals ready to be pinned in
// internal/dpfuzz/regress_test.go.
//
// Usage:
//
//	dpfuzz                         # 1000 seeds starting at 0
//	dpfuzz -start 5000 -count 200  # a specific seed range
//	dpfuzz -duration 30m           # as many seeds as fit in 30 minutes
//	dpfuzz -workers 4              # parallel soak
//	dpfuzz -killrecover            # add the crash-recovery differential per seed
//	dpfuzz -elastic                # add the elastic-membership differential per seed
//	dpfuzz -class range            # restrict to one template class (const, vardist, range)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dpgen/internal/dpfuzz"
)

func main() {
	start := flag.Uint64("start", 0, "first seed")
	count := flag.Uint64("count", 1000, "number of seeds (0 = unbounded, stop on -duration)")
	duration := flag.Duration("duration", 0, "stop after this long (0 = run the full count)")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel workers")
	progress := flag.Duration("progress", 10*time.Second, "progress report interval")
	failFast := flag.Bool("failfast", false, "stop at the first failure")
	killRecover := flag.Bool("killrecover", false, "also run the crash-recovery differential per seed (rank kill + resume/rejoin)")
	elastic := flag.Bool("elastic", false, "also run the elastic-membership differential per seed (2 -> 3 -> 2 ranks mid-run)")
	className := flag.String("class", "any", "restrict generation to one template class: const, vardist, range (any = natural mix)")
	flag.Parse()

	class, err := dpfuzz.ParseClass(*className)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpfuzz: %v\n", err)
		os.Exit(2)
	}

	if *count == 0 && *duration == 0 {
		fmt.Fprintln(os.Stderr, "dpfuzz: -count 0 requires -duration")
		os.Exit(2)
	}

	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}

	var (
		next     atomic.Uint64
		done     atomic.Uint64
		ehrharts atomic.Uint64
		failures atomic.Uint64
		stop     atomic.Bool
		outMu    sync.Mutex
	)
	next.Store(*start)
	began := time.Now()

	report := func() {
		fmt.Fprintf(os.Stderr, "dpfuzz: %d seeds in %v (%.1f/s), ehrhart layer ran %d, failures %d\n",
			done.Load(), time.Since(began).Round(time.Second),
			float64(done.Load())/time.Since(began).Seconds(),
			ehrharts.Load(), failures.Load())
	}

	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				seed := next.Add(1) - 1
				if *count > 0 && seed >= *start+*count {
					return
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				in := dpfuzz.GenerateClass(seed, class)
				checked, err := dpfuzz.CheckAll(in)
				if checked {
					ehrharts.Add(1)
				}
				if err == nil && *killRecover {
					err = dpfuzz.CheckKillRecover(in)
				}
				if err == nil && *elastic {
					err = dpfuzz.CheckElastic(in)
				}
				done.Add(1)
				if err == nil {
					continue
				}
				failures.Add(1)
				min := dpfuzz.Minimize(in, func(c *dpfuzz.Instance) bool {
					_, e := dpfuzz.CheckAll(c)
					return e != nil
				})
				_, merr := dpfuzz.CheckAll(min)
				outMu.Lock()
				fmt.Printf("=== FAILURE seed %d ===\n%v\nminimized: %v\nreproduce with:\n%s\n",
					seed, err, merr, dpfuzz.GoLiteral(min))
				outMu.Unlock()
				if *failFast {
					stop.Store(true)
				}
			}
		}()
	}

	tick := time.NewTicker(*progress)
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	for running := true; running; {
		select {
		case <-tick.C:
			report()
		case <-doneCh:
			running = false
		}
	}
	tick.Stop()
	report()
	if failures.Load() > 0 {
		os.Exit(1)
	}
}
