package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"dpgen/internal/engine"
	"dpgen/internal/obs"
	"dpgen/internal/tiling"
)

// Metrics capture state for -metrics: every engine run of the selected
// experiments gets a tracer attached, and its aggregate snapshot is
// written as <dir>/<experiment>-<seq>.json and .prom.
var (
	metricsDir string
	metricsExp string
	metricsSeq int
)

func setMetricsExp(id string) {
	metricsExp = id
	metricsSeq = 0
}

// runEngine wraps engine.Run so experiments record a metrics snapshot
// per run when -metrics is set; without the flag it is a plain call.
func runEngine(tl *tiling.Tiling, kernel engine.Kernel, params []int64, cfg engine.Config) (*engine.Result, error) {
	if metricsDir == "" {
		return engine.Run(tl, kernel, params, cfg)
	}
	tracer := obs.NewTracer()
	cfg.Tracer = tracer
	res, err := engine.Run(tl, kernel, params, cfg)
	if err != nil {
		return res, err
	}
	m := tracer.Snapshot().Metrics()
	metricsSeq++
	base := filepath.Join(metricsDir, fmt.Sprintf("%s-%d", metricsExp, metricsSeq))
	doc := struct {
		Experiment string       `json:"experiment"`
		Run        int          `json:"run"`
		Params     []int64      `json:"params"`
		Metrics    *obs.Metrics `json:"metrics"`
	}{metricsExp, metricsSeq, params, m}
	if data, err := json.MarshalIndent(&doc, "", "  "); err == nil {
		err = os.WriteFile(base+".json", append(data, '\n'), 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: metrics: %v\n", err)
		}
	}
	f, err := os.Create(base + ".prom")
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpbench: metrics: %v\n", err)
		return res, nil
	}
	if err := m.WritePrometheus(f); err != nil {
		fmt.Fprintf(os.Stderr, "dpbench: metrics: %v\n", err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "dpbench: metrics: %v\n", err)
	}
	return res, nil
}
