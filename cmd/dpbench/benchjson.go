package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"dpgen/internal/engine"
	"dpgen/internal/problems"
	"dpgen/internal/tiling"
	"dpgen/internal/workload"
)

// The -bench-json mode measures engine throughput (ns/cell) for every
// builtin problem at fixed configurations and writes a machine-readable
// snapshot. The committed BENCH_engine.json seeds the perf trajectory:
// regenerate with
//
//	go run ./cmd/dpbench -bench-json BENCH_engine.json
//
// and compare against a previous snapshot with -bench-against.

type benchRow struct {
	Problem string  `json:"problem"`
	Params  []int64 `json:"params"`
	Nodes   int     `json:"nodes"`
	Threads int     `json:"threads"`
	// Sched names the tile scheduler the row ran under ("hybrid" or
	// "dynamic", engine.Sched.String()).
	Sched string  `json:"sched"`
	Cells int64   `json:"cells"`
	NsPerCell   float64 `json:"ns_per_cell"`
	CellsPerSec float64 `json:"cells_per_sec"`
	// SpeedupVsT1 relates this row's throughput to the same-snapshot
	// single-thread row of the same problem and scheduler (thread-scaling
	// within one machine and run, not across snapshots).
	SpeedupVsT1 float64 `json:"speedup_vs_t1,omitempty"`
	// BaselineNsPerCell and Speedup are filled when -bench-against
	// provides an older snapshot with a matching row.
	BaselineNsPerCell float64 `json:"baseline_ns_per_cell,omitempty"`
	Speedup           float64 `json:"speedup,omitempty"`
}

type benchSnapshot struct {
	Schema  string     `json:"schema"`
	Go      string     `json:"go"`
	Date    string     `json:"date"`
	Reps    int        `json:"reps"`
	Results []benchRow `json:"results"`
}

// benchCase is one (problem, params, config) measurement target.
type benchCase struct {
	name    string
	prob    *problems.Problem
	params  []int64
	nodes   int
	threads int
}

// benchCases lists the fixed configurations of the snapshot: every
// builtin single-node single-thread at its default params (the pure
// per-cell overhead), plus paper-scale bandit2 and lcs2 rows swept
// back-to-back over the requested thread counts (the Section VI
// quantities and the thread-scaling trajectory).
func benchCases(threads []int) []benchCase {
	var cases []benchCase
	for _, name := range problems.Names() {
		p, err := problems.Get(name)
		if err != nil {
			panic(err)
		}
		cases = append(cases, benchCase{name: name, prob: p, params: p.DefaultParams, nodes: 1, threads: 1})
	}
	b2 := problems.Bandit2()
	l2 := problems.LCS2(workload.DNA(2000, 9), workload.DNA(2000, 10))
	for _, th := range threads {
		cases = append(cases, benchCase{name: "bandit2@paper", prob: b2, params: []int64{100}, nodes: 1, threads: th})
		cases = append(cases, benchCase{name: "lcs2@paper", prob: l2, params: l2.DefaultParams, nodes: 1, threads: th})
	}
	return cases
}

func runBenchJSON(out, against string, threads []int, sched engine.Sched, minScaling string) error {
	const reps = 3
	var prev map[string]benchRow
	if against != "" {
		raw, err := os.ReadFile(against)
		if err != nil {
			return err
		}
		var old benchSnapshot
		if err := json.Unmarshal(raw, &old); err != nil {
			return fmt.Errorf("parsing %s: %w", against, err)
		}
		prev = map[string]benchRow{}
		for _, r := range old.Results {
			prev[fmt.Sprintf("%s/%d/%d", r.Problem, r.Nodes, r.Threads)] = r
		}
	}

	snap := benchSnapshot{
		Schema: "dpgen-bench-engine/v1",
		Go:     runtime.Version(),
		Date:   time.Now().UTC().Format("2006-01-02"),
		Reps:   reps,
	}
	for _, c := range benchCases(threads) {
		tl, err := tiling.New(c.prob.Spec)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		cfg := engine.Config{Nodes: c.nodes, Threads: c.threads, Sched: sched}
		var cells int64
		best := time.Duration(0)
		// One warmup run, then best-of-reps wall time around engine.Run.
		for rep := 0; rep <= reps; rep++ {
			t0 := time.Now()
			res, err := engine.Run(tl, c.prob.Kernel, c.params, cfg)
			el := time.Since(t0)
			if err != nil {
				return fmt.Errorf("%s: %w", c.name, err)
			}
			cells = 0
			for _, st := range res.Stats {
				cells += st.CellsComputed
			}
			if rep > 0 && (best == 0 || el < best) {
				best = el
			}
		}
		row := benchRow{
			Problem: c.name, Params: c.params, Nodes: c.nodes, Threads: c.threads,
			Sched:       sched.String(),
			Cells:       cells,
			NsPerCell:   float64(best.Nanoseconds()) / float64(cells),
			CellsPerSec: float64(cells) / best.Seconds(),
		}
		if prev != nil {
			if old, ok := prev[fmt.Sprintf("%s/%d/%d", row.Problem, row.Nodes, row.Threads)]; ok {
				row.BaselineNsPerCell = old.NsPerCell
				row.Speedup = old.NsPerCell / row.NsPerCell
			}
		}
		snap.Results = append(snap.Results, row)
		fmt.Printf("%-16s params=%v nodes=%d threads=%d  %8.1f ns/cell  %10.2f Mcells/s",
			row.Problem, row.Params, row.Nodes, row.Threads, row.NsPerCell, row.CellsPerSec/1e6)
		if row.Speedup > 0 {
			fmt.Printf("  %.2fx vs baseline", row.Speedup)
		}
		fmt.Println()
	}
	fillSpeedupVsT1(snap.Results)
	raw, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows)\n", out, len(snap.Results))
	return checkMinScaling(snap.Results, minScaling)
}

// fillSpeedupVsT1 relates every multi-threaded row to its same-run
// single-thread counterpart (same problem, nodes and scheduler), giving
// the within-snapshot thread-scaling curve.
func fillSpeedupVsT1(rows []benchRow) {
	t1 := map[string]float64{}
	for _, r := range rows {
		if r.Threads == 1 {
			t1[r.Problem+"/"+r.Sched] = r.NsPerCell
		}
	}
	for i := range rows {
		r := &rows[i]
		if r.Threads == 1 {
			continue
		}
		if base, ok := t1[r.Problem+"/"+r.Sched]; ok && r.NsPerCell > 0 {
			r.SpeedupVsT1 = base / r.NsPerCell
			fmt.Printf("%-16s t%d vs t1: %.2fx\n", r.Problem, r.Threads, r.SpeedupVsT1)
		}
	}
}

// checkMinScaling enforces "-min-scaling case=ratio,..." assertions: the
// named problem's highest-thread row must reach the given speedup over
// its single-thread row. A row whose thread count exceeds the machine's
// CPU count cannot physically scale, so such assertions are reported and
// skipped rather than failed (the committed snapshot stays honest on
// small builders; the gate bites on real multi-core hosts).
func checkMinScaling(rows []benchRow, spec string) error {
	if spec == "" {
		return nil
	}
	for _, item := range strings.Split(spec, ",") {
		name, ratioStr, ok := strings.Cut(strings.TrimSpace(item), "=")
		if !ok {
			return fmt.Errorf("bad -min-scaling entry %q (want problem=ratio)", item)
		}
		ratio, err := strconv.ParseFloat(ratioStr, 64)
		if err != nil {
			return fmt.Errorf("bad -min-scaling ratio in %q: %v", item, err)
		}
		var best *benchRow
		for i := range rows {
			r := &rows[i]
			if r.Problem == name && r.Threads > 1 && (best == nil || r.Threads > best.Threads) {
				best = r
			}
		}
		if best == nil {
			return fmt.Errorf("-min-scaling %s: no multi-threaded row for that problem", name)
		}
		if runtime.NumCPU() < best.Threads {
			fmt.Printf("min-scaling %s: SKIP (t%d needs >=%d CPUs, host has %d)\n",
				name, best.Threads, best.Threads, runtime.NumCPU())
			continue
		}
		if best.SpeedupVsT1 < ratio {
			return fmt.Errorf("min-scaling %s: t%d speedup %.2fx below required %.2fx",
				name, best.Threads, best.SpeedupVsT1, ratio)
		}
		fmt.Printf("min-scaling %s: OK (t%d %.2fx >= %.2fx)\n", name, best.Threads, best.SpeedupVsT1, ratio)
	}
	return nil
}
