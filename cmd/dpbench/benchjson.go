package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"dpgen/internal/engine"
	"dpgen/internal/problems"
	"dpgen/internal/tiling"
	"dpgen/internal/workload"
)

// The -bench-json mode measures engine throughput (ns/cell) for every
// builtin problem at fixed configurations and writes a machine-readable
// snapshot. The committed BENCH_engine.json seeds the perf trajectory:
// regenerate with
//
//	go run ./cmd/dpbench -bench-json BENCH_engine.json
//
// and compare against a previous snapshot with -bench-against.

type benchRow struct {
	Problem string  `json:"problem"`
	Params  []int64 `json:"params"`
	Nodes   int     `json:"nodes"`
	Threads int     `json:"threads"`
	Cells   int64   `json:"cells"`
	NsPerCell   float64 `json:"ns_per_cell"`
	CellsPerSec float64 `json:"cells_per_sec"`
	// BaselineNsPerCell and Speedup are filled when -bench-against
	// provides an older snapshot with a matching row.
	BaselineNsPerCell float64 `json:"baseline_ns_per_cell,omitempty"`
	Speedup           float64 `json:"speedup,omitempty"`
}

type benchSnapshot struct {
	Schema  string     `json:"schema"`
	Go      string     `json:"go"`
	Date    string     `json:"date"`
	Reps    int        `json:"reps"`
	Results []benchRow `json:"results"`
}

// benchCase is one (problem, params, config) measurement target.
type benchCase struct {
	name    string
	prob    *problems.Problem
	params  []int64
	nodes   int
	threads int
}

// benchCases lists the fixed configurations of the snapshot: every
// builtin single-node single-thread at its default params (the pure
// per-cell overhead), plus paper-scale bandit2 and lcs2 rows at 1 and 4
// threads (the Section VI quantities).
func benchCases() []benchCase {
	var cases []benchCase
	for _, name := range problems.Names() {
		p, err := problems.Get(name)
		if err != nil {
			panic(err)
		}
		cases = append(cases, benchCase{name: name, prob: p, params: p.DefaultParams, nodes: 1, threads: 1})
	}
	b2 := problems.Bandit2()
	l2 := problems.LCS2(workload.DNA(2000, 9), workload.DNA(2000, 10))
	for _, th := range []int{1, 4} {
		cases = append(cases, benchCase{name: "bandit2@paper", prob: b2, params: []int64{100}, nodes: 1, threads: th})
		cases = append(cases, benchCase{name: "lcs2@paper", prob: l2, params: l2.DefaultParams, nodes: 1, threads: th})
	}
	return cases
}

func runBenchJSON(out, against string) error {
	const reps = 3
	var prev map[string]benchRow
	if against != "" {
		raw, err := os.ReadFile(against)
		if err != nil {
			return err
		}
		var old benchSnapshot
		if err := json.Unmarshal(raw, &old); err != nil {
			return fmt.Errorf("parsing %s: %w", against, err)
		}
		prev = map[string]benchRow{}
		for _, r := range old.Results {
			prev[fmt.Sprintf("%s/%d/%d", r.Problem, r.Nodes, r.Threads)] = r
		}
	}

	snap := benchSnapshot{
		Schema: "dpgen-bench-engine/v1",
		Go:     runtime.Version(),
		Date:   time.Now().UTC().Format("2006-01-02"),
		Reps:   reps,
	}
	for _, c := range benchCases() {
		tl, err := tiling.New(c.prob.Spec)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		cfg := engine.Config{Nodes: c.nodes, Threads: c.threads}
		var cells int64
		best := time.Duration(0)
		// One warmup run, then best-of-reps wall time around engine.Run.
		for rep := 0; rep <= reps; rep++ {
			t0 := time.Now()
			res, err := engine.Run(tl, c.prob.Kernel, c.params, cfg)
			el := time.Since(t0)
			if err != nil {
				return fmt.Errorf("%s: %w", c.name, err)
			}
			cells = 0
			for _, st := range res.Stats {
				cells += st.CellsComputed
			}
			if rep > 0 && (best == 0 || el < best) {
				best = el
			}
		}
		row := benchRow{
			Problem: c.name, Params: c.params, Nodes: c.nodes, Threads: c.threads,
			Cells:       cells,
			NsPerCell:   float64(best.Nanoseconds()) / float64(cells),
			CellsPerSec: float64(cells) / best.Seconds(),
		}
		if prev != nil {
			if old, ok := prev[fmt.Sprintf("%s/%d/%d", row.Problem, row.Nodes, row.Threads)]; ok {
				row.BaselineNsPerCell = old.NsPerCell
				row.Speedup = old.NsPerCell / row.NsPerCell
			}
		}
		snap.Results = append(snap.Results, row)
		fmt.Printf("%-16s params=%v nodes=%d threads=%d  %8.1f ns/cell  %10.2f Mcells/s",
			row.Problem, row.Params, row.Nodes, row.Threads, row.NsPerCell, row.CellsPerSec/1e6)
		if row.Speedup > 0 {
			fmt.Printf("  %.2fx vs baseline", row.Speedup)
		}
		fmt.Println()
	}
	raw, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows)\n", out, len(snap.Results))
	return nil
}
