// Command dpbench regenerates every measurable result of the paper's
// evaluation: the correctness of the generated solvers (Fig 1/Sec II),
// load-balance quality (Fig 2), loop synthesis (Fig 3), the
// priority-vs-memory behaviour (Figs 4-5), shared-memory scaling
// (Fig 6), weak scaling across nodes (Fig 7), the tile-width and
// buffer-count sweeps (Sec VI-C), the initial-tile-generation cost claim
// (Sec IV-K), the pending-memory claim (Sec V-B), and the hyperplane
// load balancer (Fig 8).
//
// The scaling experiments run on the deterministic cluster simulator
// (see dpgen/internal/simsched) because this reproduction has no
// 24-core nodes; correctness and memory experiments run on the real
// in-process hybrid runtime.
//
// Usage:
//
//	dpbench -exp all          # everything (several minutes)
//	dpbench -exp fig6,fig7    # a subset
//	dpbench -exp all -quick   # smaller instances (~tens of seconds)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"dpgen/internal/engine"
)

type experiment struct {
	id   string
	desc string
	run  func(quick bool)
}

var experiments = []experiment{
	{"fig1", "Sec II/Fig 1: generated solvers match serial references exactly", expFig1},
	{"fig2", "Fig 2: Ehrhart load balancing across 3 nodes; 2 dims vs 1", expFig2},
	{"fig3", "Fig 3: synthesized loop nests and generated tile code", expFig3},
	{"fig45", "Figs 4-5: tile priority vs peak buffered edges", expFig45},
	{"fig6", "Fig 6: shared-memory scaling, 1..24 cores", expFig6},
	{"fig7", "Fig 7: weak scaling, 1..8 nodes x 24 cores", expFig7},
	{"tilesweep", "Sec VI-C: tile width sweep (pipeline starvation)", expTileSweep},
	{"bufsweep", "Sec VI-C: send-buffer count sweep", expBufSweep},
	{"prio", "Sec V-B: priority policy and key orientation", expPrio},
	{"inittiles", "Sec IV-K: serial initial tile generation < 0.5% of runtime", expInitTiles},
	{"pending", "Sec V-B: pending-edge memory is O(n^(d-1))", expPending},
	{"fig8", "Fig 8/Sec VII-B: hyperplane vs prefix load balancing", expFig8},
}

func main() {
	var (
		expFlag = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		quick   = flag.Bool("quick", false, "smaller instances for a fast pass")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		metrics = flag.String("metrics", "", "directory for per-run metrics snapshots (<exp>-<n>.json and .prom) of the runtime experiments")
		benchJSON = flag.String("bench-json", "", "write an engine throughput snapshot (ns/cell per builtin at fixed configs) to this file and exit")
		benchBase = flag.String("bench-against", "", "older -bench-json snapshot to compare against (fills baseline_ns_per_cell/speedup)")
		benchThreads = flag.String("bench-threads", "1,4", "comma-separated thread counts for the paper-scale -bench-json rows, measured back-to-back")
		benchSched   = flag.String("bench-sched", "hybrid", "tile scheduler for -bench-json rows: hybrid, dynamic")
		minScaling   = flag.String("min-scaling", "", "thread-scaling assertions for -bench-json, e.g. 'lcs2@paper=1.5' (skipped when the host has fewer CPUs than the row's threads)")
	)
	flag.Parse()
	if *benchJSON != "" {
		threads, err := parseThreadList(*benchThreads)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: %v\n", err)
			os.Exit(1)
		}
		var sched engine.Sched
		switch *benchSched {
		case "hybrid":
			sched = engine.SchedHybrid
		case "dynamic":
			sched = engine.SchedDynamic
		default:
			fmt.Fprintf(os.Stderr, "dpbench: unknown -bench-sched %q\n", *benchSched)
			os.Exit(1)
		}
		if err := runBenchJSON(*benchJSON, *benchBase, threads, sched, *minScaling); err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *metrics != "" {
		if err := os.MkdirAll(*metrics, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: %v\n", err)
			os.Exit(1)
		}
		metricsDir = *metrics
	}

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-10s %s\n", e.id, e.desc)
		}
		return
	}
	want := map[string]bool{}
	all := *expFlag == "all"
	for _, id := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(id)] = true
	}
	ran := 0
	for _, e := range experiments {
		if !all && !want[e.id] {
			continue
		}
		fmt.Printf("==== %s: %s ====\n", e.id, e.desc)
		setMetricsExp(e.id)
		e.run(*quick)
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "dpbench: no experiment matched %q; use -list\n", *expFlag)
		os.Exit(2)
	}
}

func pick(quick bool, q, full int64) int64 {
	if quick {
		return q
	}
	return full
}

// parseThreadList parses the -bench-threads comma list into ascending
// positive thread counts (ascending so every sweep row can be related
// to an earlier t1 row).
func parseThreadList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -bench-threads entry %q", f)
		}
		out = append(out, v)
	}
	sort.Ints(out)
	return out, nil
}
