package main

import (
	"fmt"
	"strings"

	"dpgen/internal/balance"
	"dpgen/internal/codegen"
	"dpgen/internal/ehrhart"
	"dpgen/internal/engine"
	"dpgen/internal/fm"
	"dpgen/internal/loopgen"
	"dpgen/internal/problems"
	"dpgen/internal/simsched"
	"dpgen/internal/spec"
	"dpgen/internal/tiling"
)

// mustTiling analyzes a problem spec, optionally overriding tile widths
// and load-balancing dimensions.
func mustTiling(p *problems.Problem, width int64, lb []string) *tiling.Tiling {
	sp := *p.Spec // shallow copy so overrides do not leak across experiments
	if width > 0 {
		w := make([]int64, len(sp.Vars))
		for i := range w {
			w[i] = width
		}
		sp.TileWidths = w
	}
	if lb != nil {
		sp.LBDims = lb
	}
	tl, err := tiling.New(&sp)
	if err != nil {
		panic(err)
	}
	return tl
}

// ---- fig1: correctness of the generated solvers ----

func expFig1(quick bool) {
	type row struct {
		name   string
		params []int64
	}
	rows := []row{
		{"bandit2", []int64{pick(quick, 12, 30)}},
		{"bandit3", []int64{pick(quick, 6, 12)}},
		{"bandit2delay", []int64{pick(quick, 6, 10)}},
		{"editdist", nil},
		{"lcs3", nil},
		{"msa3", nil},
	}
	fmt.Printf("%-14s %-18s %-22s %-22s %s\n", "problem", "params", "hybrid value", "serial value", "match")
	for _, r := range rows {
		p, err := problems.Get(r.name)
		if err != nil {
			panic(err)
		}
		params := r.params
		if params == nil {
			params = p.DefaultParams
		}
		res, err := runEngine(mustTiling(p, 0, nil), p.Kernel, params, engine.Config{Nodes: 3, Threads: 2})
		if err != nil {
			panic(err)
		}
		want := p.Serial(params)
		match := "OK"
		if res.Value != want {
			match = "MISMATCH"
		}
		fmt.Printf("%-14s %-18s %-22.15g %-22.15g %s\n", r.name, fmt.Sprint(params), res.Value, want, match)
	}
}

// ---- fig2: load balancing across 3 nodes ----

func expFig2(quick bool) {
	p := problems.Bandit2()
	N := pick(quick, 30, 60)

	// The paper's first Ehrhart polynomial: total work as a function of N.
	nest, err := loopgen.Build(p.Spec.System(), p.Spec.Order(), fm.Options{})
	if err != nil {
		panic(err)
	}
	qp, err := ehrhart.Interpolate(nest, ehrhart.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("total work (Ehrhart): W(N) = %s;  W(%d) = %d\n", qp, N, qp.Eval(N))

	// Multivariate reconstruction for a multi-parameter problem.
	ed := problems.EditDistanceSeeded(1, 2)
	edNest, err := loopgen.Build(ed.Spec.System(), ed.Spec.Order(), fm.Options{})
	if err != nil {
		panic(err)
	}
	mp, err := ehrhart.InterpolateMulti(edNest, ehrhart.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("editdist total work (multivariate Ehrhart): W(200,180) = %d (= 201*181)\n\n",
		mp.Eval([]int64{200, 180}))

	for _, lb := range [][]string{{"s1"}, {"s1", "f1"}} {
		tl := mustTiling(p, 5, lb)
		a, err := balance.Build(tl, []int64{N}, 3, balance.Prefix)
		if err != nil {
			panic(err)
		}
		fmt.Printf("lb dims %-12v work per node:", lb)
		for n, w := range a.Work {
			fmt.Printf("  node%d %d (%.1f%%)", n, w, 100*float64(w)/float64(a.Total))
		}
		fmt.Printf("  imbalance %.3f\n", a.Imbalance())
	}
}

// ---- fig3: loop synthesis and generated code ----

func expFig3(quick bool) {
	p := problems.Bandit2()
	nest, err := loopgen.Build(p.Spec.System(), p.Spec.Order(), fm.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("synthesized loop nest for the 2-arm bandit (cf. Fig 1):")
	fmt.Println(nest)

	src, err := codegen.Generate(p.Spec, codegen.Options{ParamDefaults: []int64{40}})
	if err != nil {
		panic(err)
	}
	fmt.Println("\ngenerated tile executor (cf. Fig 3), first lines:")
	printFunc(string(src), "func dpExecTile", 18)
}

func printFunc(src, marker string, lines int) {
	i := strings.Index(src, marker)
	if i < 0 {
		fmt.Println("  (not found)")
		return
	}
	for n, line := range strings.Split(src[i:], "\n") {
		if n >= lines {
			fmt.Println("  ...")
			return
		}
		fmt.Println("  " + line)
	}
}

// ---- figs 4-5: priority policy vs buffered-edge memory ----

func expFig45(quick bool) {
	// 2-D n x n tile grid with unit templates, executed on one node with
	// one thread so the policy alone decides buffering.
	sp := spec.MustNew("grid2", []string{"N"}, []string{"x", "y"})
	sp.MustConstrain("0 <= x <= N")
	sp.MustConstrain("0 <= y <= N")
	sp.AddDep("r", 1, 0)
	sp.AddDep("d", 0, 1)
	sp.TileWidths = []int64{2, 2}
	kernel := func(c *engine.Ctx) {
		v := 1.0
		if c.DepValid[0] {
			v += c.V[c.DepLoc[0]]
		}
		if c.DepValid[1] {
			v += c.V[c.DepLoc[1]]
		}
		c.V[c.Loc] = v
	}
	tl, err := tiling.New(sp)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-8s %-18s %-18s %-10s %-10s\n", "n tiles", "column-major", "level-set", "n+1", "2(n-1)")
	ns := []int64{5, 16, 32}
	if quick {
		ns = []int64{5, 16}
	}
	for _, n := range ns {
		N := 2*n - 1
		peak := map[engine.Priority]int64{}
		for _, prio := range []engine.Priority{engine.ColumnMajor, engine.LevelSet} {
			res, err := runEngine(tl, kernel, []int64{N}, engine.Config{Priority: prio})
			if err != nil {
				panic(err)
			}
			peak[prio] = res.Stats[0].PeakPendingEdges
		}
		fmt.Printf("%-8d %-18d %-18d %-10d %-10d\n",
			n, peak[engine.ColumnMajor], peak[engine.LevelSet], n+1, 2*(n-1))
	}

	// 4-D bandit: the level-set peak grows toward d times column-major.
	p := problems.Bandit2()
	tl4 := mustTiling(p, 4, nil)
	N := pick(quick, 20, 32)
	peak := map[engine.Priority]int64{}
	for _, prio := range []engine.Priority{engine.ColumnMajor, engine.LevelSet} {
		res, err := runEngine(tl4, p.Kernel, []int64{N}, engine.Config{Priority: prio})
		if err != nil {
			panic(err)
		}
		peak[prio] = res.Stats[0].PeakBufferedElems
	}
	fmt.Printf("\n4-D bandit2 (N=%d): peak buffered elems column-major %d, level-set %d (ratio %.2f; d=%d)\n",
		N, peak[engine.ColumnMajor], peak[engine.LevelSet],
		float64(peak[engine.LevelSet])/float64(peak[engine.ColumnMajor]), 4)
}

// ---- fig6: shared-memory scaling ----

type scaleInstance struct {
	name   string
	tl     *tiling.Tiling
	params []int64
}

func fig6Instances(quick bool) []scaleInstance {
	b2 := problems.Bandit2()
	b3 := problems.Bandit3()
	ed := problems.EditDistanceSeeded(1, 2)
	l3 := problems.LCS3Seeded(2)
	m3 := problems.MSA3Seeded(3)
	if quick {
		return []scaleInstance{
			{"bandit2", mustTiling(b2, 6, nil), []int64{90}},
			{"bandit3", mustTiling(b3, 4, nil), []int64{24}},
			{"editdist", mustTiling(ed, 32, nil), []int64{600, 600}},
			{"lcs3", mustTiling(l3, 8, nil), []int64{96, 96, 96}},
			{"msa3", mustTiling(m3, 8, nil), []int64{64, 64, 64}},
		}
	}
	return []scaleInstance{
		{"bandit2", mustTiling(b2, 6, nil), []int64{180}},
		{"bandit3", mustTiling(b3, 4, nil), []int64{60}},
		{"editdist", mustTiling(ed, 32, nil), []int64{8000, 8000}},
		{"lcs3", mustTiling(l3, 8, nil), []int64{240, 240, 240}},
		{"msa3", mustTiling(m3, 8, nil), []int64{320, 320, 320}},
	}
}

func expFig6(quick bool) {
	cores := []int{1, 2, 4, 8, 12, 16, 20, 24}
	fmt.Printf("simulated speedup on one 24-core node (cost model: %+v)\n\n", simsched.DefaultCostModel())
	fmt.Printf("%-10s", "problem")
	for _, c := range cores {
		fmt.Printf(" %6dc", c)
	}
	fmt.Printf("  %s\n", "eff@24")
	for _, inst := range fig6Instances(quick) {
		cache := simsched.NewCostCache()
		assign, err := balance.Build(inst.tl, inst.params, 1, balance.Prefix)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-10s", inst.name)
		var last, t1 float64
		for _, c := range cores {
			res, err := simsched.Simulate(inst.tl, inst.params, simsched.Config{
				Nodes: 1, Cores: c, Cache: cache, Assign: assign,
			})
			if err != nil {
				panic(err)
			}
			if c == 1 {
				t1 = res.Makespan
			}
			last = t1 / res.Makespan
			fmt.Printf(" %7.2f", last)
		}
		fmt.Printf("  %.1f%%\n", 100*last/24)
	}
}

// ---- fig7: weak scaling across nodes ----

func expFig7(quick bool) {
	nodes := []int{1, 2, 4, 8}
	fmt.Println("simulated weak scaling, 24 cores per node; problem size grows with")
	fmt.Println("the node count so locations per node stay roughly constant; times")
	fmt.Println("are normalized per location as in the paper")
	for _, series := range []struct {
		name  string
		inst  func(n int) ([]int64, *tiling.Tiling)
		cache bool
	}{
		{"bandit2", weakBandit2(quick), false},
		{"bandit3", weakBandit3(quick), false},
		{"editdist", weakEditDist(quick), false},
		{"lcs3", weakLCS3(quick), false},
	} {
		fmt.Printf("\n%s:\n%-6s %-16s %-14s %-12s %-10s %s\n",
			series.name, "nodes", "params", "locations", "makespan", "eff", "msgs")
		var basePerLoc float64
		for _, n := range nodes {
			params, tl := series.inst(n)
			res, err := simsched.Simulate(tl, params, simsched.Config{Nodes: n, Cores: 24})
			if err != nil {
				panic(err)
			}
			perLoc := res.Makespan * float64(n) / float64(res.TotalCells)
			if n == 1 {
				basePerLoc = perLoc
			}
			fmt.Printf("%-6d %-16s %-14d %-12s %-8s %d\n",
				n, fmt.Sprint(params), res.TotalCells,
				fmt.Sprintf("%.4fs", res.Makespan),
				fmt.Sprintf("%.1f%%", 100*basePerLoc/perLoc), res.Messages)
		}
	}
}

// weakBandit2 returns an instance builder: for n nodes, the smallest N
// whose location count reaches n times the base instance's.
func weakBandit2(quick bool) func(n int) ([]int64, *tiling.Tiling) {
	base := pick(quick, 60, 170)
	tl := mustTiling(problems.Bandit2(), 6, nil)
	loc := func(N int64) int64 { return (N + 1) * (N + 2) * (N + 3) * (N + 4) / 24 }
	return func(n int) ([]int64, *tiling.Tiling) {
		target := int64(n) * loc(base)
		N := base
		for loc(N) < target {
			N++
		}
		return []int64{N}, tl
	}
}

func weakBandit3(quick bool) func(n int) ([]int64, *tiling.Tiling) {
	base := pick(quick, 18, 60)
	tl := mustTiling(problems.Bandit3(), 4, nil)
	loc := func(N int64) int64 {
		v := int64(1)
		for i := int64(1); i <= 6; i++ {
			v = v * (N + i) / i
		}
		return v
	}
	return func(n int) ([]int64, *tiling.Tiling) {
		target := int64(n) * loc(base)
		N := base
		for loc(N) < target {
			N++
		}
		return []int64{N}, tl
	}
}

func weakEditDist(quick bool) func(n int) ([]int64, *tiling.Tiling) {
	base := pick(quick, 500, 1200)
	tl := mustTiling(problems.EditDistanceSeeded(1, 2), 32, nil)
	return func(n int) ([]int64, *tiling.Tiling) {
		L := base
		for (L+1)*(L+1) < int64(n)*(base+1)*(base+1) {
			L++
		}
		return []int64{L, L}, tl
	}
}

func weakLCS3(quick bool) func(n int) ([]int64, *tiling.Tiling) {
	base := pick(quick, 72, 240)
	tl := mustTiling(problems.LCS3Seeded(2), 8, nil)
	return func(n int) ([]int64, *tiling.Tiling) {
		L := base
		for (L+1)*(L+1)*(L+1) < int64(n)*(base+1)*(base+1)*(base+1) {
			L++
		}
		return []int64{L, L, L}, tl
	}
}

// ---- tile width sweep (Sec VI-C) ----

func expTileSweep(quick bool) {
	// The paper swept the 3-arm bandit up to width 15; a 6-D problem with
	// many tiles per dimension is beyond what the simulator can replay
	// tile-by-tile, so the sweep runs on the 4-D bandit where the same
	// overhead-vs-starvation trade-off is reachable.
	p := problems.Bandit2()
	N := pick(quick, 120, 240)
	widths := []int64{6, 9, 12, 18, 24}
	if quick {
		widths = []int64{6, 12, 24}
	}
	nodeCounts := []int{1, 4, 8}
	// Per-tile overhead of 20us stands in for the queue locking, memory
	// management and per-tile MPI bookkeeping of the paper's runtime;
	// it is what makes very small tiles lose at low node counts.
	cost := simsched.DefaultCostModel()
	cost.TileOverhead = 20e-6
	fmt.Printf("2-arm bandit N=%d, 24 cores per node: simulated makespan (s)\n\n", N)
	fmt.Printf("%-8s", "width")
	for _, n := range nodeCounts {
		fmt.Printf(" %8dn", n)
	}
	fmt.Println()
	best := map[int]float64{}
	bestW := map[int]int64{}
	for _, w := range widths {
		tl := mustTiling(p, w, nil)
		cache := simsched.NewCostCache()
		fmt.Printf("%-8d", w)
		for _, n := range nodeCounts {
			res, err := simsched.Simulate(tl, []int64{N}, simsched.Config{Nodes: n, Cores: 24, Cache: cache, Cost: cost})
			if err != nil {
				panic(err)
			}
			fmt.Printf(" %8.4f", res.Makespan)
			if b, ok := best[n]; !ok || res.Makespan < b {
				best[n] = res.Makespan
				bestW[n] = w
			}
		}
		fmt.Println()
	}
	fmt.Printf("\nbest width per node count:")
	for _, n := range nodeCounts {
		fmt.Printf("  %dn -> w=%d", n, bestW[n])
	}
	fmt.Println()
}

// ---- priority policy and orientation (Sec V-B) ----

func expPrio(quick bool) {
	p := problems.Bandit2()
	N := pick(quick, 100, 200)
	tl := mustTiling(p, 6, nil)
	cache := simsched.NewCostCache()
	fmt.Printf("2-arm bandit N=%d on 4 nodes x 24 cores: simulated makespan by ready-tile policy\n\n", N)
	type variant struct {
		name    string
		prio    engine.Priority
		reverse bool
	}
	var base float64
	for _, v := range []variant{
		{"column-major (paper, communication-first)", engine.ColumnMajor, false},
		{"column-major reversed (least-advanced first)", engine.ColumnMajor, true},
		{"level-set (Fig 4b)", engine.LevelSet, false},
		{"fifo", engine.FIFO, false},
	} {
		res, err := simsched.Simulate(tl, []int64{N}, simsched.Config{
			Nodes: 4, Cores: 24, Priority: v.prio, ReverseKey: v.reverse, Cache: cache,
		})
		if err != nil {
			panic(err)
		}
		if base == 0 {
			base = res.Makespan
		}
		fmt.Printf("%-46s %.4fs  (%.2fx)\n", v.name, res.Makespan, res.Makespan/base)
	}
	fmt.Println("\nthe reversed orientation is what a long-critical-path implementation")
	fmt.Println("looks like: each node finishes its boundary slab last and starves the")
	fmt.Println("downstream node (the paper's Section IV-J caveat)")
}

// ---- send-buffer sweep (Sec VI-C) ----

func expBufSweep(quick bool) {
	p := problems.Bandit2()
	N := pick(quick, 60, 90)
	tl := mustTiling(p, 6, nil)
	cost := simsched.DefaultCostModel()
	cost.MsgLatency = 100e-6 // long-haul latency: exhausted buffers degenerate to rendezvous
	cache := simsched.NewCostCache()
	fmt.Printf("2-arm bandit N=%d on 8 nodes x 24 cores, 100us message latency\n\n", N)
	fmt.Printf("%-10s %-14s %s\n", "sendbufs", "makespan", "vs 16 bufs")
	var base float64
	results := map[int]float64{}
	bufs := []int{16, 8, 4, 2, 1}
	for _, b := range bufs {
		res, err := simsched.Simulate(tl, []int64{N}, simsched.Config{
			Nodes: 8, Cores: 24, SendBufs: b, Cost: cost, Cache: cache,
		})
		if err != nil {
			panic(err)
		}
		results[b] = res.Makespan
		if b == 16 {
			base = res.Makespan
		}
	}
	for _, b := range []int{1, 2, 4, 8, 16} {
		fmt.Printf("%-10d %-14s %.2fx\n", b, fmt.Sprintf("%.4fs", results[b]), results[b]/base)
	}
}

// ---- initial tile generation cost (Sec IV-K) ----

func expInitTiles(quick bool) {
	p := problems.Bandit2()
	N := pick(quick, 50, 100)
	tl := mustTiling(p, 6, nil)
	res, err := runEngine(tl, p.Kernel, []int64{N}, engine.Config{Nodes: 2, Threads: 1})
	if err != nil {
		panic(err)
	}
	frac := res.InitTime.Seconds() / res.TotalTime.Seconds()
	fmt.Printf("bandit2 N=%d: tiles %d\n", N, tl.TileCount([]int64{N}))
	fmt.Printf("initial tile generation (Sec IV-K, serial): %s = %.3f%% of total %s (paper claims < 0.5%%)\n",
		res.InitTime, 100*frac, res.TotalTime)
	fmt.Printf("load balancing (Sec IV-J, direct counting in place of Ehrhart closed forms): %s = %.3f%%\n",
		res.BalanceTime, 100*res.BalanceTime.Seconds()/res.TotalTime.Seconds())
}

// ---- pending-edge memory (Sec V-B) ----

func expPending(quick bool) {
	p := problems.Bandit2()
	tl := mustTiling(p, 5, nil)
	Ns := []int64{20, 30, 45, 60}
	if quick {
		Ns = []int64{20, 30, 45}
	}
	fmt.Printf("%-6s %-12s %-16s %-14s %s\n", "N", "locations", "peak edge elems", "peak/space", "full-space elems")
	for _, N := range Ns {
		res, err := runEngine(tl, p.Kernel, []int64{N}, engine.Config{})
		if err != nil {
			panic(err)
		}
		loc := (N + 1) * (N + 2) * (N + 3) * (N + 4) / 24
		peak := res.Stats[0].PeakBufferedElems
		fmt.Printf("%-6d %-12d %-16d %-14.4f %d\n", N, loc, peak, float64(peak)/float64(loc), loc)
	}
	fmt.Println("peak/space shrinks with N: pending storage is O(n^(d-1)), the full table Theta(n^d)")
}

// ---- fig8: hyperplane vs prefix load balancing ----

func expFig8(quick bool) {
	p := problems.Bandit2()
	N := pick(quick, 50, 100)
	tl := mustTiling(p, 5, nil)
	cache := simsched.NewCostCache()
	fmt.Printf("2-arm bandit N=%d, 24 cores per node: makespan and mean idle fraction\n", N)
	fmt.Println("(the paper reports reduced idle for the hyperplane method; see EXPERIMENTS.md")
	fmt.Println(" for why this reproduction's communication-first priority reverses that)")
	fmt.Println()
	fmt.Printf("%-7s %-22s %-22s\n", "nodes", "prefix (Sec IV-J)", "hyperplane (Fig 8)")
	for _, n := range []int{3, 4, 8} {
		var out [2]string
		for i, m := range []balance.Method{balance.Prefix, balance.Hyperplane} {
			res, err := simsched.Simulate(tl, []int64{N}, simsched.Config{
				Nodes: n, Cores: 24, Balance: m, Cache: cache,
			})
			if err != nil {
				panic(err)
			}
			var idle float64
			for _, f := range res.IdleFrac {
				idle += f
			}
			idle /= float64(len(res.IdleFrac))
			out[i] = fmt.Sprintf("%.4fs / %4.1f%% idle", res.Makespan, 100*idle)
		}
		fmt.Printf("%-7d %-22s %-22s\n", n, out[0], out[1])
	}
}
