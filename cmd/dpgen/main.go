// Command dpgen is the program generator CLI: it reads a high-level
// problem description (see the spec format in README.md) and writes a
// complete, self-contained hybrid parallel Go program.
//
// Usage:
//
//	dpgen -spec problem.dps -o prog.go [-pkg main] [-defaults 40,30]
//	dpgen -builtin bandit2 -o prog.go
//	dpgen -builtin editdist -build prog
//
// With -build, the generated source is also compiled with the host Go
// toolchain into the named binary.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"

	"dpgen"
	"dpgen/internal/problems"
)

func main() {
	var (
		specPath = flag.String("spec", "", "problem spec file")
		builtin  = flag.String("builtin", "", "generate a built-in problem instead of a spec file")
		out      = flag.String("o", "", "output .go file (default stdout)")
		pkg      = flag.String("pkg", "main", "generated package name")
		defaults = flag.String("defaults", "", "comma-separated default parameter values")
		build    = flag.String("build", "", "also compile the program to this binary")
	)
	flag.Parse()

	sp, err := loadSpec(*specPath, *builtin)
	if err != nil {
		fatal(err)
	}
	opts := dpgen.GenOptions{Package: *pkg}
	if *defaults != "" {
		for _, f := range strings.Split(*defaults, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad -defaults entry %q: %v", f, err))
			}
			opts.ParamDefaults = append(opts.ParamDefaults, v)
		}
	}
	src, err := dpgen.Generate(sp, opts)
	if err != nil {
		fatal(err)
	}
	switch {
	case *out != "":
		if err := os.WriteFile(*out, src, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dpgen: wrote %s (%d bytes)\n", *out, len(src))
	case *build == "":
		os.Stdout.Write(src)
	}

	if *build != "" {
		if err := compile(src, *build); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dpgen: built %s\n", *build)
	}
}

func loadSpec(specPath, builtin string) (*dpgen.Spec, error) {
	switch {
	case specPath != "" && builtin != "":
		return nil, fmt.Errorf("dpgen: use either -spec or -builtin, not both")
	case specPath != "":
		return dpgen.LoadSpec(specPath)
	case builtin != "":
		p, err := problems.Get(builtin)
		if err != nil {
			return nil, err
		}
		if p.Spec.KernelCode == "" {
			return nil, fmt.Errorf("dpgen: builtin %q has no center-loop source", builtin)
		}
		return p.Spec, nil
	default:
		return nil, fmt.Errorf("dpgen: need -spec FILE or -builtin NAME (builtins: %s)", strings.Join(problems.Names(), ", "))
	}
}

// compile writes the source into a throwaway module and runs go build.
func compile(src []byte, bin string) error {
	dir, err := os.MkdirTemp("", "dpgen-build-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if err := os.WriteFile(filepath.Join(dir, "main.go"), src, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module gen\n\ngo 1.22\n"), 0o644); err != nil {
		return err
	}
	abs, err := filepath.Abs(bin)
	if err != nil {
		return err
	}
	cmd := exec.Command("go", "build", "-o", abs, ".")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		return fmt.Errorf("go build: %v\n%s", err, out)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
