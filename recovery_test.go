package dpgen

import (
	"math"
	"net"
	"runtime"
	"testing"
	"time"

	"dpgen/internal/engine"
	"dpgen/internal/mpi/tcp"
	"dpgen/internal/problems"
	"dpgen/internal/tiling"
)

// TestRecoveryBitIdentical is the end-to-end fault-tolerance check:
// a two-rank distributed run in which rank 1 crashes mid-execution
// (its transport killed after a fixed tile count), is restarted with
// -resume/-rejoin semantics, and the completed run must still produce
// the exact serial-reference value on both surviving ranks. Message
// counts are NOT compared — recovery legitimately redelivers
// duplicates, which the engine deduplicates. The test also asserts
// that no goroutine outlives the run, crashed incarnation included.
func TestRecoveryBitIdentical(t *testing.T) {
	for _, name := range []string{"bandit2", "lcs2"} {
		name := name
		t.Run(name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			p, err := problems.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			params := p.DefaultParams
			serial := p.Serial(params)

			const nranks, threads = 2, 2
			reftl, err := tiling.New(p.Spec)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := engine.Run(reftl, p.Kernel, params, engine.Config{Nodes: nranks, Threads: threads})
			if err != nil {
				t.Fatal(err)
			}

			ckdir := t.TempDir()
			lns := make([]net.Listener, nranks)
			peers := make([]string, nranks)
			for r := range lns {
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				lns[r] = ln
				peers[r] = ln.Addr().String()
			}
			opts := func(r int) tcp.Options {
				return tcp.Options{
					Recovery:    true,
					DialTimeout: 15 * time.Second,
					Listener:    lns[r],
				}
			}

			// Rank 0 runs uninterrupted for the whole job; while rank 1
			// is down its outbound edges park and redeliver on rejoin.
			type outcome struct {
				res *engine.Result
				err error
			}
			rank0 := make(chan outcome, 1)
			go func() {
				tl, err := tiling.New(p.Spec)
				if err != nil {
					rank0 <- outcome{nil, err}
					return
				}
				tr, err := tcp.Dial(0, peers, opts(0))
				if err != nil {
					rank0 <- outcome{nil, err}
					return
				}
				res, err := engine.Run(tl, p.Kernel, params, engine.Config{
					Transport:  tr,
					Threads:    threads,
					Checkpoint: engine.CheckpointConfig{Dir: ckdir, EveryTiles: 4},
				})
				rank0 <- outcome{res, err}
			}()

			// Rank 1, first incarnation: crash (transport kill) after 10
			// executed tiles. Run must return an error, not hang.
			rank1 := make(chan outcome, 1)
			go func() {
				tl, err := tiling.New(p.Spec)
				if err != nil {
					rank1 <- outcome{nil, err}
					return
				}
				tr, err := tcp.Dial(1, peers, opts(1))
				if err != nil {
					rank1 <- outcome{nil, err}
					return
				}
				res, err := engine.Run(tl, p.Kernel, params, engine.Config{
					Transport:       tr,
					Threads:         threads,
					Checkpoint:      engine.CheckpointConfig{Dir: ckdir, EveryTiles: 4},
					CrashAfterTiles: 10,
					CrashFn:         tr.Kill,
				})
				rank1 <- outcome{res, err}
			}()
			select {
			case oc := <-rank1:
				if oc.err == nil {
					t.Fatalf("crashed incarnation returned nil error (result %+v)", oc.res)
				}
			case <-time.After(60 * time.Second):
				t.Fatal("crashed incarnation never returned")
			}

			// Rank 1, second incarnation: rejoin the mesh and resume
			// from whatever checkpoint the crash left behind (possibly
			// none — resume-from-scratch is equally correct).
			tl1b, err := tiling.New(p.Spec)
			if err != nil {
				t.Fatal(err)
			}
			tr1b, err := tcp.DialRejoin(1, peers, tcp.Options{DialTimeout: 15 * time.Second})
			if err != nil {
				t.Fatalf("rejoin: %v", err)
			}
			res1b, err := engine.Run(tl1b, p.Kernel, params, engine.Config{
				Transport:  tr1b,
				Threads:    threads,
				Checkpoint: engine.CheckpointConfig{Dir: ckdir, EveryTiles: 4, Resume: true},
			})
			if err != nil {
				t.Fatalf("resumed incarnation: %v", err)
			}

			var res0 *engine.Result
			select {
			case oc := <-rank0:
				if oc.err != nil {
					t.Fatalf("rank 0: %v", oc.err)
				}
				res0 = oc.res
			case <-time.After(60 * time.Second):
				t.Fatal("rank 0 never finished")
			}

			for _, sr := range []struct {
				rank int
				res  *engine.Result
			}{{0, res0}, {1, res1b}} {
				if sr.res.Value != ref.Value {
					t.Errorf("rank %d: Value %.17g != in-mem reference %.17g", sr.rank, sr.res.Value, ref.Value)
				}
				if sr.res.Max != ref.Max && !(math.IsNaN(sr.res.Max) && math.IsNaN(ref.Max)) {
					t.Errorf("rank %d: Max %.17g != in-mem reference %.17g", sr.rank, sr.res.Max, ref.Max)
				}
				got := sr.res.Value
				if p.UseMax {
					got = sr.res.Max
				}
				if got != serial {
					t.Errorf("rank %d: recovered run %.17g != serial reference %.17g", sr.rank, got, serial)
				}
			}
			if _, restarts := countRecovery(res0); restarts != 1 {
				t.Errorf("rank 0 observed %d peer restarts, want 1", restarts)
			}

			// Everything is closed; the process must be back to its
			// pre-test goroutine count (give the runtime time to reap).
			deadline := time.Now().Add(10 * time.Second)
			for {
				if n := runtime.NumGoroutine(); n <= before {
					return
				} else if time.Now().After(deadline) {
					t.Fatalf("goroutines leaked: %d before, %d after", before, n)
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}

// countRecovery pulls the recovery counters the engine folded into the
// local rank's stats entry.
func countRecovery(res *engine.Result) (hbMisses, restarts int64) {
	for _, st := range res.Stats {
		hbMisses += st.HeartbeatMisses
		restarts += st.PeerRestarts
	}
	return hbMisses, restarts
}
