package dpgen

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example main at a small size; they are
// the documentation, so they must keep working.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs example binaries")
	}
	cases := []struct {
		dir  string
		args []string
		want string // substring that must appear on stdout
	}{
		{"quickstart", []string{"-N", "12", "-nodes", "2", "-threads", "2"}, "matches the serial"},
		{"distributed", []string{"-N", "12", "-threads", "2"}, "bit-identical to the serial recursion"},
		{"bandit3", []string{"-N", "6", "-nodes", "2", "-threads", "2"}, "third arm adds"},
		{"msa", []string{"-len", "12", "-nodes", "2", "-threads", "2"}, "MSA >= bound: true"},
		{"lcs", []string{"-len", "16", "-nodes", "2", "-threads", "2"}, "verified: the recovered string"},
		{"tuning", []string{"-N", "30", "-nodes", "2", "-cores", "4"}, "best: tile width"},
		{"codegen", []string{"-o", t.TempDir() + "/gen.go"}, "standalone, stdlib-only Go"},
		{"serving", []string{"-N", "24", "-concurrent", "4"}, "the compiled-spec cache works"},
	}
	for _, c := range cases {
		cmd := exec.Command("go", append([]string{"run", "./examples/" + c.dir}, c.args...)...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s: %v\n%s", c.dir, err, out)
		}
		if !strings.Contains(string(out), c.want) {
			t.Errorf("%s: output missing %q:\n%s", c.dir, c.want, out)
		}
	}
}
